//! Slave-latch placements ([`Cut`]s) on a [`CombCloud`].
//!
//! A retiming of the slave latches is fully described by the per-node
//! retiming value `r(v) ∈ {−1, 0}` of the paper (Section IV-B): slaves
//! start on the host edges into the sources (`w(e_{h,I}) = 1`, Fig. 5) and
//! `r(v) = −1` moves them forward through `v`. We store this as a boolean
//! *moved* flag per node.
//!
//! A cut is **valid** when, for every edge `u → v`, `moved[v] ⇒ moved[u]`
//! (the non-negativity constraint `r(u) − r(v) ≤ w(e_{uv})`) and no sink is
//! moved. Validity implies the defining property of Section III: *every
//! source→sink path crosses exactly one slave latch* — which
//! [`Cut::check_paths`] verifies independently for testing.

use std::collections::HashMap;

use crate::cell::{CellId, Gate};
use crate::cloud::{CloudEdge, CombCloud, NodeId, NodeKind};
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// A placement of slave latches, encoded as the set of nodes the latches
/// have been retimed through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    moved: Vec<bool>,
}

impl Cut {
    /// The initial cut: every slave latch at its master's output
    /// (no node moved through).
    pub fn initial(cloud: &CombCloud) -> Cut {
        Cut {
            moved: vec![false; cloud.len()],
        }
    }

    /// Builds a cut from per-node retiming values, where `true` means
    /// `r(v) = −1` (the latch has been moved forward through `v`).
    ///
    /// # Panics
    /// Panics if `moved.len()` differs from the cloud size.
    pub fn from_moved(cloud: &CombCloud, moved: Vec<bool>) -> Cut {
        assert_eq!(
            moved.len(),
            cloud.len(),
            "moved vector must cover every cloud node"
        );
        Cut { moved }
    }

    /// Builds a cut from a raw moved vector without a cloud to check
    /// against. Prefer [`Cut::from_moved`]; this exists for solvers that
    /// produce the vector away from the cloud and validate afterwards.
    pub fn from_raw(moved: Vec<bool>) -> Cut {
        Cut { moved }
    }

    /// Whether the latch has been retimed through node `v`.
    pub fn is_moved(&self, v: NodeId) -> bool {
        self.moved[v.index()]
    }

    /// The paper's retiming value `r(v)`: −1 if moved, 0 otherwise.
    pub fn retiming_value(&self, v: NodeId) -> i64 {
        if self.moved[v.index()] {
            -1
        } else {
            0
        }
    }

    /// Marks node `v` as moved (used by solvers assembling a cut).
    pub fn set_moved(&mut self, v: NodeId, moved: bool) {
        self.moved[v.index()] = moved;
    }

    /// Checks cut validity: edge monotonicity and fixed sinks.
    ///
    /// # Errors
    /// Returns [`NetlistError::Inconsistent`] naming the first offending
    /// edge or sink.
    pub fn validate(&self, cloud: &CombCloud) -> Result<(), NetlistError> {
        for e in cloud.edges() {
            if self.moved[e.to.index()] && !self.moved[e.from.index()] {
                return Err(NetlistError::Inconsistent(format!(
                    "cut moves through `{}` but not its fanin `{}`",
                    cloud.node(e.to).name,
                    cloud.node(e.from).name
                )));
            }
        }
        for &t in cloud.sinks() {
            if self.moved[t.index()] {
                return Err(NetlistError::Inconsistent(format!(
                    "cut moves through sink `{}` (masters are fixed)",
                    cloud.node(t).name
                )));
            }
        }
        Ok(())
    }

    /// Independently verifies that every source→sink path crosses exactly
    /// one latch, by counting latched edges along paths with dynamic
    /// programming. Intended for tests; [`Cut::validate`] is the fast check.
    pub fn check_paths(&self, cloud: &CombCloud) -> bool {
        // lat[v] = set of possible latch counts on paths from the host to v,
        // tracked as (min, max): the host edge into each source carries one
        // latch unless the source is moved.
        let mut minmax: Vec<Option<(i64, i64)>> = vec![None; cloud.len()];
        for &s in cloud.sources() {
            let here = if self.moved[s.index()] { 0 } else { 1 };
            minmax[s.index()] = Some((here, here));
        }
        for &v in cloud.topo() {
            let node = cloud.node(v);
            if node.is_source() {
                continue;
            }
            let mut acc: Option<(i64, i64)> = None;
            for &u in &node.fanin {
                if let Some((lo, hi)) = minmax[u.index()] {
                    let latched = i64::from(self.edge_latched(CloudEdge { from: u, to: v }));
                    let (nlo, nhi) = (lo + latched, hi + latched);
                    acc = Some(match acc {
                        None => (nlo, nhi),
                        Some((alo, ahi)) => (alo.min(nlo), ahi.max(nhi)),
                    });
                }
            }
            minmax[v.index()] = acc;
        }
        cloud
            .sinks()
            .iter()
            .all(|&t| matches!(minmax[t.index()], Some((1, 1)) | None))
    }

    /// Whether a slave latch sits on the given edge.
    ///
    /// An interior edge `u → v` is latched when the latch has moved through
    /// `u` but not `v`. For an *unmoved source*, the latch sits at the
    /// source itself, covering **all** of its fanout edges.
    pub fn edge_latched(&self, e: CloudEdge) -> bool {
        if self.moved[e.from.index()] {
            !self.moved[e.to.index()]
        } else {
            // Latch (if any) sits at the source position.
            false
        }
    }

    /// Whether node `v` drives its fanout through a slave latch placed at
    /// its output (either an unmoved source, or a moved node with at least
    /// one unmoved fanout).
    pub fn latch_at_output(&self, cloud: &CombCloud, v: NodeId) -> bool {
        let node = cloud.node(v);
        if node.is_source() && !self.moved[v.index()] {
            return true;
        }
        self.moved[v.index()] && node.fanout.iter().any(|&w| !self.moved[w.index()])
    }

    /// Number of slave latches under fanout sharing: one latch per node
    /// that needs a latched output (all latched fanouts of a node share a
    /// single latch, the `β = 1/k` sharing of the paper's Eq. 3).
    pub fn slave_count(&self, cloud: &CombCloud) -> usize {
        (0..cloud.len())
            .filter(|&i| self.latch_at_output(cloud, NodeId(i as u32)))
            .count()
    }

    /// The nodes carrying an output slave latch.
    pub fn latch_positions(&self, cloud: &CombCloud) -> Vec<NodeId> {
        (0..cloud.len())
            .map(|i| NodeId(i as u32))
            .filter(|&v| self.latch_at_output(cloud, v))
            .collect()
    }

    /// Materializes the cut as a latch-based [`Netlist`].
    ///
    /// `netlist` must be the netlist the cloud was extracted from (either
    /// sequential style). The result contains one [`Gate::LatchMaster`] per
    /// original state element and newly-placed [`Gate::LatchSlave`] cells at
    /// the cut positions; primary inputs that carry a (conceptual) input
    /// slave latch get one too, keeping the cycle-accurate structure
    /// explicit.
    ///
    /// # Errors
    /// Returns [`NetlistError::Inconsistent`] if the cut is invalid or the
    /// netlist does not match the cloud.
    pub fn apply(&self, cloud: &CombCloud, netlist: &Netlist) -> Result<Netlist, NetlistError> {
        self.validate(cloud)?;
        if netlist.len() != cloud.cell_count() {
            return Err(NetlistError::Inconsistent(
                "netlist does not match the cloud it is applied with".into(),
            ));
        }
        let mut out = Netlist::new(netlist.name());
        // Map cloud node -> new cell driving its (pre-latch) value.
        let mut node_cell: HashMap<NodeId, CellId> = HashMap::new();
        // 1. Sources: inputs and masters.
        for &s in cloud.sources() {
            match cloud.node(s).kind {
                NodeKind::Source { master: None } => {
                    let name = source_base_name(cloud, s);
                    let id = out.add_input(name);
                    node_cell.insert(s, id);
                }
                NodeKind::Source {
                    master: Some(mcell),
                } => {
                    let mname = netlist.cell(mcell).name.clone();
                    let mname = mname.strip_suffix("__m").unwrap_or(&mname).to_string();
                    let id =
                        out.add_gate(format!("{mname}__m"), Gate::LatchMaster, &[CellId(0)])?;
                    node_cell.insert(s, id);
                }
                _ => unreachable!("sources() returns sources"),
            }
        }
        // 2. Gates (in topological order so fanins exist... fanins are
        // resolved later, so order is free; keep topo for readability).
        for &v in cloud.topo() {
            if let NodeKind::Gate { cell, .. } = cloud.node(v).kind {
                let c = netlist.cell(cell);
                let id = out.add_gate(c.name.clone(), c.gate, &vec![CellId(0); c.fanin.len()])?;
                node_cell.insert(v, id);
            }
        }
        // 3. Slave latches at cut positions.
        let mut slave_of: HashMap<NodeId, CellId> = HashMap::new();
        for v in self.latch_positions(cloud) {
            let base = node_cell[&v];
            let name = format!("{}__s", out.cell(base).name);
            let id = out.add_gate(name, Gate::LatchSlave, &[base])?;
            slave_of.insert(v, id);
        }
        // Helper: the cell some consumer on edge (u -> v) should read.
        let reader = |u: NodeId, v: NodeId| -> CellId {
            let latched = if !self.moved[u.index()] && cloud.node(u).is_source() {
                true // unmoved source: all fanouts read the source slave
            } else {
                self.edge_latched(CloudEdge { from: u, to: v })
            };
            if latched {
                slave_of[&u]
            } else {
                node_cell[&u]
            }
        };
        // 4. Resolve gate fanins.
        for &v in cloud.topo() {
            if let NodeKind::Gate { .. } = cloud.node(v).kind {
                let fanin: Vec<CellId> =
                    cloud.node(v).fanin.iter().map(|&u| reader(u, v)).collect();
                out.set_fanin_internal(node_cell[&v], fanin);
            }
        }
        // 5. Sinks: master D pins and primary outputs.
        for &t in cloud.sinks() {
            let drv_node = cloud.node(t).fanin[0];
            let drv = reader(drv_node, t);
            match cloud.node(t).kind {
                NodeKind::Sink {
                    master: Some(mcell),
                } => {
                    // Find the new master for this original master cell.
                    let src = cloud.producer_of_cell(mcell).ok_or_else(|| {
                        NetlistError::Inconsistent("master without source node".into())
                    })?;
                    let new_master = node_cell[&src];
                    out.set_fanin_internal(new_master, vec![drv]);
                }
                NodeKind::Sink { master: None } => {
                    let name = cloud.node(t).name.clone();
                    out.add_output(name, drv)?;
                }
                _ => unreachable!("sinks() returns sinks"),
            }
        }
        out.validate()?;
        Ok(out)
    }
}

fn source_base_name(cloud: &CombCloud, s: NodeId) -> String {
    cloud.node(s).name.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::cloud::CombCloud;

    fn pipeline() -> (Netlist, CombCloud) {
        // a -> g1 -> g2 -> q (DFF) -> g3 -> PO, with a side branch.
        let n = bench::parse(
            "pipe",
            "\
INPUT(a)
INPUT(b)
OUTPUT(z)
g1 = AND(a, b)
g2 = NOT(g1)
q = DFF(g2)
g3 = OR(q, b)
z = BUFF(g3)
",
        )
        .unwrap();
        let cloud = CombCloud::extract(&n).unwrap();
        (n, cloud)
    }

    #[test]
    fn initial_cut_valid_and_counts_sources() {
        let (_n, cloud) = pipeline();
        let cut = Cut::initial(&cloud);
        cut.validate(&cloud).unwrap();
        assert!(cut.check_paths(&cloud));
        // One latch per source: a, b, q.q
        assert_eq!(cut.slave_count(&cloud), 3);
    }

    #[test]
    fn moved_cut_valid() {
        let (_n, cloud) = pipeline();
        let mut cut = Cut::initial(&cloud);
        // Move through a, b and g1 (g1's fanins both moved).
        for name in ["a", "b", "g1"] {
            cut.set_moved(cloud.find(name).unwrap(), true);
        }
        cut.validate(&cloud).unwrap();
        assert!(cut.check_paths(&cloud));
        // Latches now at g1's output, at b's output (b also feeds g3), and
        // still at the unmoved source q.q.
        assert_eq!(cut.slave_count(&cloud), 3);
    }

    #[test]
    fn invalid_cut_detected() {
        let (_n, cloud) = pipeline();
        let mut cut = Cut::initial(&cloud);
        // Move through g1 without moving through its fanins.
        cut.set_moved(cloud.find("g1").unwrap(), true);
        assert!(cut.validate(&cloud).is_err());
        assert!(!cut.check_paths(&cloud));
    }

    #[test]
    fn sink_cannot_move() {
        let (_n, cloud) = pipeline();
        let mut cut = Cut::initial(&cloud);
        let t = cloud.sinks()[0];
        // Move everything in the sink's cone including the sink itself.
        for v in cloud.fanin_cone(t) {
            cut.set_moved(v, true);
        }
        assert!(cut.validate(&cloud).is_err());
    }

    #[test]
    fn apply_initial_cut_round_trips_structure() {
        let (n, cloud) = pipeline();
        let cut = Cut::initial(&cloud);
        let latched = cut.apply(&cloud, &n).unwrap();
        let s = latched.stats();
        assert_eq!(s.masters, 1);
        // Slaves: one per source (a, b, q).
        assert_eq!(s.slaves, 3);
        assert_eq!(s.gates, n.stats().gates);
        latched.validate().unwrap();
    }

    #[test]
    fn apply_moved_cut_places_interior_slaves() {
        let (n, cloud) = pipeline();
        let mut cut = Cut::initial(&cloud);
        for name in ["a", "b", "g1"] {
            cut.set_moved(cloud.find(name).unwrap(), true);
        }
        let latched = cut.apply(&cloud, &n).unwrap();
        assert_eq!(latched.stats().slaves, 3);
        // g2 must now read g1 through a slave latch.
        let g2 = latched.find("g2").unwrap();
        let drv = latched.cell(g2).fanin[0];
        assert_eq!(latched.cell(drv).gate, Gate::LatchSlave);
        assert_eq!(latched.cell(drv).name, "g1__s");
        // g3 reads b through b's slave.
        let g3 = latched.find("g3").unwrap();
        let bdrv = latched.cell(g3).fanin[1];
        assert_eq!(latched.cell(bdrv).gate, Gate::LatchSlave);
    }

    #[test]
    fn apply_on_latch_style_netlist() {
        let (n, _) = pipeline();
        let ms = n.to_master_slave().unwrap();
        let cloud = CombCloud::extract(&ms).unwrap();
        let cut = Cut::initial(&cloud);
        let latched = cut.apply(&cloud, &ms).unwrap();
        assert_eq!(latched.stats().masters, 1);
        assert_eq!(latched.stats().slaves, 3);
    }

    #[test]
    fn retiming_values() {
        let (_n, cloud) = pipeline();
        let mut cut = Cut::initial(&cloud);
        let a = cloud.find("a").unwrap();
        assert_eq!(cut.retiming_value(a), 0);
        cut.set_moved(a, true);
        assert_eq!(cut.retiming_value(a), -1);
        assert!(cut.is_moved(a));
    }
}
