//! Gate-level netlist substrate for resiliency-aware retiming.
//!
//! This crate provides the circuit representation shared by every other
//! crate in the workspace:
//!
//! * [`Netlist`] — a flip-flop based gate-level netlist (the form in which
//!   benchmark circuits such as ISCAS89 are distributed),
//! * parsers and writers for the ISCAS89 [`mod@bench`] format and a structural
//!   subset of [`blif`],
//! * [`CombCloud`] — the combinational retiming view obtained by
//!   cutting the circuit at its flip-flops (Section III of the paper):
//!   inputs are (fixed) master-latch outputs, outputs are (fixed)
//!   master-latch inputs,
//! * [`Cut`] — a placement of slave latches on the edges of the cloud,
//!   with validity checking (every input→output path must cross exactly one
//!   slave latch) and latch counting under fanout sharing.
//!
//! # Example
//!
//! ```
//! # use retime_netlist::{Netlist, Gate};
//! # fn main() -> Result<(), retime_netlist::NetlistError> {
//! let mut n = Netlist::new("adder_bit");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let x = n.add_gate("sum", Gate::Xor, &[a, b])?;
//! let q = n.add_gate("q", Gate::Dff, &[x])?;
//! n.add_output("out", q)?;
//! n.validate()?;
//! assert_eq!(n.stats().dffs, 1);
//! # Ok(())
//! # }
//! ```

pub mod bench;
pub mod blif;
pub mod cell;
pub mod cloud;
pub mod cut;
pub mod error;
pub mod netlist;

pub use cell::{Cell, CellId, Gate};
pub use cloud::{CloudEdge, CloudNode, CombCloud, NodeId, NodeKind};
pub use cut::Cut;
pub use error::NetlistError;
pub use netlist::{Netlist, NetlistStats};
