//! The [`Netlist`] container and its construction / validation API.

use std::collections::HashMap;

use crate::cell::{Cell, CellId, Gate};
use crate::error::NetlistError;

/// A gate-level netlist.
///
/// Cells are stored densely and addressed by [`CellId`]. Every cell has a
/// single output net which shares the cell's name; multi-output structures
/// are modelled as multiple cells. Fanout adjacency is derivable on demand
/// via [`Netlist::fanouts`].
///
/// Two sequential styles coexist:
/// * **flip-flop based** — the benchmark distribution form ([`Gate::Dff`]),
/// * **latch based** — after [`Netlist::to_master_slave`], every flip-flop
///   is split into a [`Gate::LatchMaster`] / [`Gate::LatchSlave`] pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
    inputs: Vec<CellId>,
    outputs: Vec<CellId>,
}

/// Summary statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of D flip-flops.
    pub dffs: usize,
    /// Number of master latches.
    pub masters: usize,
    /// Number of slave latches.
    pub slaves: usize,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells (including input and output markers).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the netlist has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All cells, indexable by [`CellId::index`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks a cell up by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[CellId] {
        &self.inputs
    }

    /// Primary output markers, in declaration order.
    pub fn outputs(&self) -> &[CellId] {
        &self.outputs
    }

    /// Ids of all flip-flops.
    pub fn dffs(&self) -> Vec<CellId> {
        self.ids_of(Gate::Dff)
    }

    /// Ids of all master latches.
    pub fn masters(&self) -> Vec<CellId> {
        self.ids_of(Gate::LatchMaster)
    }

    /// Ids of all slave latches.
    pub fn slaves(&self) -> Vec<CellId> {
        self.ids_of(Gate::LatchSlave)
    }

    fn ids_of(&self, gate: Gate) -> Vec<CellId> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.gate == gate)
            .map(|(i, _)| CellId(i as u32))
            .collect()
    }

    /// Adds a primary input.
    ///
    /// # Panics
    /// Panics if the name is already taken (inputs are normally declared
    /// first; use [`Netlist::add_gate`] for fallible insertion).
    pub fn add_input(&mut self, name: impl Into<String>) -> CellId {
        let name = name.into();
        let id = self
            .insert(Cell::new(name.clone(), Gate::Input, Vec::new()))
            .unwrap_or_else(|_| panic!("duplicate input name `{name}`"));
        self.inputs.push(id);
        id
    }

    /// Adds a gate (combinational or sequential) driven by `fanin`.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the name is taken and
    /// [`NetlistError::BadArity`] if the fanin count is illegal for `gate`.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        gate: Gate,
        fanin: &[CellId],
    ) -> Result<CellId, NetlistError> {
        let name = name.into();
        let (lo, hi) = gate.arity();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(NetlistError::BadArity {
                cell: name,
                got: fanin.len(),
            });
        }
        self.insert(Cell::new(name, gate, fanin.to_vec()))
    }

    /// Marks `driver` as a primary output, adding an output marker cell.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if `name` is taken.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        driver: CellId,
    ) -> Result<CellId, NetlistError> {
        let id = self.insert(Cell::new(name, Gate::Output, vec![driver]))?;
        self.outputs.push(id);
        Ok(id)
    }

    /// Replaces a cell's fanin list (crate-internal; used by parsers that
    /// must resolve forward references after all cells exist).
    pub(crate) fn set_fanin_internal(&mut self, id: CellId, fanin: Vec<CellId>) {
        self.cells[id.index()].fanin = fanin;
    }

    /// Replaces a cell's entire fanin list, checking arity.
    ///
    /// # Panics
    /// Panics if the new fanin violates the gate's arity or references an
    /// out-of-range cell — rewiring is a structural edit whose misuse is a
    /// programming error, not an input error.
    pub fn replace_fanin(&mut self, id: CellId, fanin: Vec<CellId>) {
        let cell = &self.cells[id.index()];
        let (lo, hi) = cell.gate.arity();
        assert!(
            fanin.len() >= lo && fanin.len() <= hi,
            "cell `{}` cannot take {} fanins",
            cell.name,
            fanin.len()
        );
        assert!(
            fanin.iter().all(|f| f.index() < self.cells.len()),
            "fanin reference out of range"
        );
        self.cells[id.index()].fanin = fanin;
    }

    /// Rewires a sequential cell's D pin. This is the public escape hatch
    /// for builders that create state elements before their input cones
    /// exist (e.g. feedback registers).
    ///
    /// # Errors
    /// Returns [`NetlistError::WrongSequentialStyle`] when `seq` is not a
    /// sequential cell and [`NetlistError::UnknownName`] when `driver` is
    /// out of range.
    pub fn set_seq_input(&mut self, seq: CellId, driver: CellId) -> Result<(), NetlistError> {
        if driver.index() >= self.cells.len() {
            return Err(NetlistError::UnknownName(format!("{driver}")));
        }
        if !self.cells[seq.index()].gate.is_sequential() {
            return Err(NetlistError::WrongSequentialStyle(format!(
                "cell `{}` is not sequential",
                self.cells[seq.index()].name
            )));
        }
        self.cells[seq.index()].fanin = vec![driver];
        Ok(())
    }

    fn insert(&mut self, cell: Cell) -> Result<CellId, NetlistError> {
        if self.by_name.contains_key(&cell.name) {
            return Err(NetlistError::DuplicateName(cell.name.clone()));
        }
        let id = CellId(self.cells.len() as u32);
        self.by_name.insert(cell.name.clone(), id);
        self.cells.push(cell);
        Ok(id)
    }

    /// Computes the fanout adjacency: for each cell, the cells it drives.
    pub fn fanouts(&self) -> Vec<Vec<CellId>> {
        let mut fo = vec![Vec::new(); self.cells.len()];
        for (i, c) in self.cells.iter().enumerate() {
            for &src in &c.fanin {
                fo[src.index()].push(CellId(i as u32));
            }
        }
        fo
    }

    /// Summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats::default();
        for c in &self.cells {
            match c.gate {
                Gate::Input => s.inputs += 1,
                Gate::Output => s.outputs += 1,
                Gate::Dff => s.dffs += 1,
                Gate::LatchMaster => s.masters += 1,
                Gate::LatchSlave => s.slaves += 1,
                _ => s.gates += 1,
            }
        }
        s
    }

    /// Checks structural invariants: fanin references are in range, arities
    /// are legal, and the combinational subgraph is acyclic.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for c in &self.cells {
            let (lo, hi) = c.gate.arity();
            if c.fanin.len() < lo || c.fanin.len() > hi {
                return Err(NetlistError::BadArity {
                    cell: c.name.clone(),
                    got: c.fanin.len(),
                });
            }
            for &f in &c.fanin {
                if f.index() >= self.cells.len() {
                    return Err(NetlistError::Inconsistent(format!(
                        "cell `{}` references out-of-range id {}",
                        c.name, f
                    )));
                }
            }
        }
        self.topo_order_combinational().map(|_| ())
    }

    /// Topological order of the combinational cells, treating sequential
    /// cell outputs and primary inputs as sources.
    ///
    /// The returned order contains **all** cells: sources first, then
    /// combinational cells in dependency order, then nothing special for
    /// sequential sinks (their D pins simply consume ordered values).
    ///
    /// # Errors
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// subgraph is cyclic.
    pub fn topo_order_combinational(&self) -> Result<Vec<CellId>, NetlistError> {
        let n = self.cells.len();
        // An edge u -> v is a combinational dependency unless u is a
        // sequential cell or a primary input (state and inputs are sources,
        // which is what breaks cycles through flip-flops).
        let dep = |src: &Cell| !(src.gate.is_sequential() || src.gate == Gate::Input);
        let mut indeg = vec![0usize; n];
        for (vi, v) in self.cells.iter().enumerate() {
            for &u in &v.fanin {
                if dep(&self.cells[u.index()]) {
                    indeg[vi] += 1;
                }
            }
        }
        let fanouts = self.fanouts();
        let mut order: Vec<CellId> = Vec::with_capacity(n);
        let mut queue: Vec<CellId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| CellId(i as u32))
            .collect();
        while let Some(u) = queue.pop() {
            order.push(u);
            if dep(&self.cells[u.index()]) {
                for &v in &fanouts[u.index()] {
                    indeg[v.index()] -= 1;
                    if indeg[v.index()] == 0 {
                        queue.push(v);
                    }
                }
            }
        }
        if order.len() != n {
            let witness = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| self.cells[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { witness });
        }
        Ok(order)
    }

    /// Converts a flip-flop based netlist into a two-phase master/slave
    /// latch based netlist: every [`Gate::Dff`] `q = DFF(d)` becomes
    /// `q_m = LATCHM(d); q = LATCHS(q_m)` so downstream logic is untouched.
    ///
    /// This matches the paper's flow in which flops are split and only the
    /// slave latches are subsequently retimed (Section I, \[15\]).
    ///
    /// # Errors
    /// Returns [`NetlistError::WrongSequentialStyle`] if the netlist already
    /// contains latches.
    pub fn to_master_slave(&self) -> Result<Netlist, NetlistError> {
        if self
            .cells
            .iter()
            .any(|c| matches!(c.gate, Gate::LatchMaster | Gate::LatchSlave))
        {
            return Err(NetlistError::WrongSequentialStyle(
                "netlist already contains latches".into(),
            ));
        }
        let mut out = Netlist::new(self.name.clone());
        // First pass: create every cell, mapping DFF -> (master, slave).
        // We keep the slave under the DFF's original name so fanin lists
        // can be copied verbatim.
        let mut id_map: Vec<CellId> = Vec::with_capacity(self.cells.len());
        for c in &self.cells {
            match c.gate {
                Gate::Dff => {
                    let m = out
                        .insert(Cell::new(
                            format!("{}__m", c.name),
                            Gate::LatchMaster,
                            Vec::new(),
                        ))
                        .map_err(|_| NetlistError::DuplicateName(format!("{}__m", c.name)))?;
                    let s = out.insert(Cell::new(c.name.clone(), Gate::LatchSlave, vec![m]))?;
                    id_map.push(s);
                }
                _ => {
                    let id = out.insert(Cell::new(c.name.clone(), c.gate, Vec::new()))?;
                    id_map.push(id);
                    match c.gate {
                        Gate::Input => out.inputs.push(id),
                        Gate::Output => out.outputs.push(id),
                        _ => {}
                    }
                }
            }
        }
        // Second pass: wire fanins through the map. A DFF's D pin becomes
        // the master's D pin.
        for (i, c) in self.cells.iter().enumerate() {
            let mapped: Vec<CellId> = c.fanin.iter().map(|&f| id_map[f.index()]).collect();
            match c.gate {
                Gate::Dff => {
                    let slave = id_map[i];
                    let master = out.cells[slave.index()].fanin[0];
                    out.cells[master.index()].fanin = mapped;
                }
                _ => {
                    out.cells[id_map[i].index()].fanin = mapped;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Netlist {
        let mut n = Netlist::new("toy");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate("g", Gate::Nand, &[a, b]).unwrap();
        let q = n.add_gate("q", Gate::Dff, &[g]).unwrap();
        let h = n.add_gate("h", Gate::Not, &[q]).unwrap();
        n.add_output("o", h).unwrap();
        n
    }

    #[test]
    fn build_and_lookup() {
        let n = toy();
        assert_eq!(n.len(), 6);
        assert_eq!(n.stats().gates, 2);
        assert_eq!(n.stats().dffs, 1);
        assert_eq!(n.cell(n.find("g").unwrap()).gate, Gate::Nand);
        assert!(n.find("zz").is_none());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut n = Netlist::new("d");
        let a = n.add_input("a");
        let r = n.add_gate("a", Gate::Not, &[a]);
        assert_eq!(r, Err(NetlistError::DuplicateName("a".into())));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut n = Netlist::new("d");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let r = n.add_gate("x", Gate::Not, &[a, b]);
        assert!(matches!(r, Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn validate_ok() {
        toy().validate().unwrap();
    }

    #[test]
    fn cycle_through_dff_is_fine() {
        let mut n = Netlist::new("counter");
        let q = n.add_gate("q", Gate::Dff, &[CellId(1)]).unwrap();
        let inv = n.add_gate("inv", Gate::Not, &[q]).unwrap();
        assert_eq!(inv, CellId(1));
        n.add_output("o", q).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("bad");
        // g1 = NOT(g2); g2 = NOT(g1): pure combinational loop.
        let g1 = n.add_gate("g1", Gate::Not, &[CellId(1)]).unwrap();
        let g2 = n.add_gate("g2", Gate::Not, &[g1]).unwrap();
        assert_eq!(g2, CellId(1));
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn fanout_adjacency() {
        let n = toy();
        let fo = n.fanouts();
        let a = n.find("a").unwrap();
        let g = n.find("g").unwrap();
        assert_eq!(fo[a.index()], vec![g]);
    }

    #[test]
    fn master_slave_conversion() {
        let n = toy();
        let ms = n.to_master_slave().unwrap();
        let s = ms.stats();
        assert_eq!(s.dffs, 0);
        assert_eq!(s.masters, 1);
        assert_eq!(s.slaves, 1);
        // The slave keeps the DFF's name so fanouts are preserved.
        let slave = ms.find("q").unwrap();
        assert_eq!(ms.cell(slave).gate, Gate::LatchSlave);
        let master = ms.cell(slave).fanin[0];
        assert_eq!(ms.cell(master).gate, Gate::LatchMaster);
        // Master's D pin is the old DFF's D driver.
        assert_eq!(ms.cell(master).fanin, vec![ms.find("g").unwrap()]);
        // Downstream NOT still reads `q`.
        let h = ms.find("h").unwrap();
        assert_eq!(ms.cell(h).fanin, vec![slave]);
        ms.validate().unwrap();
    }

    #[test]
    fn master_slave_rejects_latch_netlist() {
        let n = toy().to_master_slave().unwrap();
        assert!(matches!(
            n.to_master_slave(),
            Err(NetlistError::WrongSequentialStyle(_))
        ));
    }

    #[test]
    fn topo_order_covers_all_cells() {
        let n = toy();
        let order = n.topo_order_combinational().unwrap();
        assert_eq!(order.len(), n.len());
        // Every gate appears after all of its combinational fanins.
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for (i, c) in n.cells().iter().enumerate() {
            for &f in &c.fanin {
                let fc = &n.cells()[f.index()];
                if fc.gate.is_combinational() {
                    assert!(pos[&f] < pos[&CellId(i as u32)]);
                }
            }
        }
    }
}
