//! ISCAS89 `.bench` format reader and writer.
//!
//! The `.bench` format is the distribution format of the ISCAS89 sequential
//! benchmark suite used in the paper's evaluation:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = NAND(G0, G1)
//! G11 = DFF(G10)
//! ```
//!
//! Forward references are allowed (a gate may use a net defined later),
//! matching the official benchmark files.

use std::collections::HashMap;

use crate::cell::{CellId, Gate};
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// Parses a `.bench` netlist from a string.
///
/// # Errors
/// Returns [`NetlistError::Parse`] on malformed lines,
/// [`NetlistError::UnknownName`] on dangling net references, and arity /
/// duplicate errors from netlist construction.
///
/// # Example
/// ```
/// # fn main() -> Result<(), retime_netlist::NetlistError> {
/// let src = "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\n";
/// let n = retime_netlist::bench::parse("and2", src)?;
/// assert_eq!(n.stats().gates, 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(name: &str, src: &str) -> Result<Netlist, NetlistError> {
    enum Item {
        Input(String),
        Output(String),
        Gate {
            out: String,
            gate: Gate,
            ins: Vec<String>,
        },
    }
    let mut items: Vec<(usize, Item)> = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lno = lineno + 1;
        let perr = |m: &str| NetlistError::Parse {
            line: lno,
            message: m.to_string(),
        };
        if let Some(rest) = strip_call(line, "INPUT") {
            items.push((lno, Item::Input(rest.trim().to_string())));
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            items.push((lno, Item::Output(rest.trim().to_string())));
        } else if let Some(eq) = line.find('=') {
            let out = line[..eq].trim().to_string();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| perr("missing `(` in gate"))?;
            if !rhs.ends_with(')') {
                return Err(perr("missing `)` in gate"));
            }
            let gname = rhs[..open].trim();
            let gate = Gate::from_bench_name(gname)
                .ok_or_else(|| perr(&format!("unknown gate type `{gname}`")))?;
            let ins: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if out.is_empty() {
                return Err(perr("empty output net name"));
            }
            items.push((lno, Item::Gate { out, gate, ins }));
        } else {
            return Err(perr("unrecognized statement"));
        }
    }

    // Two-pass construction to support forward references.
    let mut n = Netlist::new(name);
    let mut ids: HashMap<String, CellId> = HashMap::new();
    for (lno, item) in &items {
        match item {
            Item::Input(net) => {
                if ids.contains_key(net) {
                    return Err(NetlistError::Parse {
                        line: *lno,
                        message: format!("net `{net}` defined twice"),
                    });
                }
                ids.insert(net.clone(), n.add_input(net.clone()));
            }
            Item::Gate { out, gate, ins } => {
                if ids.contains_key(out) {
                    return Err(NetlistError::Parse {
                        line: *lno,
                        message: format!("net `{out}` defined twice"),
                    });
                }
                // Placeholder fanin filled in the second pass; arity is
                // checked now against the declared input count.
                let (lo, hi) = gate.arity();
                if ins.len() < lo || ins.len() > hi {
                    return Err(NetlistError::BadArity {
                        cell: out.clone(),
                        got: ins.len(),
                    });
                }
                let id = n.add_gate(out.clone(), *gate, &vec![CellId(0); ins.len()])?;
                ids.insert(out.clone(), id);
            }
            Item::Output(_) => {}
        }
    }
    // Resolve fanins and outputs.
    let mut gate_idx = 0usize;
    for (_lno, item) in &items {
        if let Item::Gate { out, ins, .. } = item {
            let _ = gate_idx;
            gate_idx += 1;
            let id = ids[out];
            let resolved: Result<Vec<CellId>, NetlistError> = ins
                .iter()
                .map(|net| {
                    ids.get(net)
                        .copied()
                        .ok_or_else(|| NetlistError::UnknownName(net.clone()))
                })
                .collect();
            set_fanin(&mut n, id, resolved?);
        }
    }
    let mut po_no = 0usize;
    for (_lno, item) in &items {
        if let Item::Output(net) = item {
            let drv = ids
                .get(net)
                .copied()
                .ok_or_else(|| NetlistError::UnknownName(net.clone()))?;
            // Ordinal suffix: the same net may legitimately be observed by
            // several outputs.
            n.add_output(format!("{net}__po{po_no}"), drv)?;
            po_no += 1;
        }
    }
    n.validate()?;
    Ok(n)
}

fn strip_call<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if upper.starts_with(kw) {
        let rest = line[kw.len()..].trim();
        rest.strip_prefix('(')?.strip_suffix(')')
    } else {
        None
    }
}

// Netlist keeps fanin private; this helper lives here via a crate-internal
// accessor implemented on Netlist.
fn set_fanin(n: &mut Netlist, id: CellId, fanin: Vec<CellId>) {
    n.set_fanin_internal(id, fanin);
}

/// Writes a netlist in `.bench` syntax.
///
/// Output markers are emitted as `OUTPUT(net)` lines referencing their
/// driver; master/slave latches use the `LATCHM`/`LATCHS` extension
/// keywords so converted designs round-trip.
pub fn write(n: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", n.name()));
    for &i in n.inputs() {
        out.push_str(&format!("INPUT({})\n", n.cell(i).name));
    }
    for &o in n.outputs() {
        let drv = n.cell(o).fanin[0];
        out.push_str(&format!("OUTPUT({})\n", n.cell(drv).name));
    }
    for c in n.cells() {
        if let Some(kw) = c.gate.bench_name() {
            let ins: Vec<&str> = c.fanin.iter().map(|&f| n.cell(f).name.as_str()).collect();
            out.push_str(&format!("{} = {}({})\n", c.name, kw, ins.join(", ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "\
# tiny sequential circuit in the style of s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NOR(G0, G14)
G11 = NOR(G5, G9)
G9 = NAND(G1, G2)
G14 = NOT(G6)
G17 = NOR(G11, G14)
";

    #[test]
    fn parse_forward_references() {
        let n = parse("s27ish", S27_LIKE).unwrap();
        let s = n.stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.dffs, 2);
        assert_eq!(s.gates, 5);
        // G5's D pin is G10.
        let g5 = n.find("G5").unwrap();
        assert_eq!(n.cell(g5).fanin, vec![n.find("G10").unwrap()]);
    }

    #[test]
    fn round_trip() {
        let n = parse("rt", S27_LIKE).unwrap();
        let text = write(&n);
        let n2 = parse("rt", &text).unwrap();
        assert_eq!(n.stats(), n2.stats());
        // Same connectivity by name.
        for c in n.cells() {
            if c.gate == crate::Gate::Output {
                continue;
            }
            let id2 = n2.find(&c.name).unwrap();
            let f1: Vec<&str> = c.fanin.iter().map(|&f| n.cell(f).name.as_str()).collect();
            let f2: Vec<&str> = n2
                .cell(id2)
                .fanin
                .iter()
                .map(|&f| n2.cell(f).name.as_str())
                .collect();
            assert_eq!(f1, f2, "fanin mismatch for {}", c.name);
        }
    }

    #[test]
    fn round_trip_latch_netlist() {
        let n = parse("rt", S27_LIKE).unwrap().to_master_slave().unwrap();
        let text = write(&n);
        let n2 = parse("rt", &text).unwrap();
        assert_eq!(n.stats(), n2.stats());
        assert_eq!(n2.stats().masters, 2);
        assert_eq!(n2.stats().slaves, 2);
    }

    #[test]
    fn rejects_unknown_gate() {
        let r = parse("x", "INPUT(a)\nz = FOO(a)\n");
        assert!(matches!(r, Err(NetlistError::Parse { line: 2, .. })));
    }

    #[test]
    fn rejects_dangling_reference() {
        let r = parse("x", "INPUT(a)\nz = AND(a, ghost)\nOUTPUT(z)\n");
        assert_eq!(r, Err(NetlistError::UnknownName("ghost".into())));
    }

    #[test]
    fn rejects_double_definition() {
        let r = parse("x", "INPUT(a)\na = NOT(a)\n");
        assert!(matches!(r, Err(NetlistError::Parse { line: 2, .. })));
    }

    #[test]
    fn rejects_missing_paren() {
        let r = parse("x", "INPUT(a)\nz = NOT(a\n");
        assert!(matches!(r, Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let n = parse("x", "\n# hi\nINPUT(a)  # trailing\n\nOUTPUT(a)\n").unwrap();
        assert_eq!(n.stats().inputs, 1);
        assert_eq!(n.stats().outputs, 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        let n = parse("x", "input(a)\noutput(z)\nz = nand(a, a)\n").unwrap();
        assert_eq!(n.stats().gates, 1);
    }
}
