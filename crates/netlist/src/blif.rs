//! Reader and writer for a structural subset of the Berkeley BLIF format.
//!
//! Supported constructs:
//!
//! * `.model`, `.inputs`, `.outputs`, `.end` (with `\` line continuation),
//! * `.latch <in> <out> [<type> <clock>] [<init>]` — mapped to [`Gate::Dff`],
//! * `.names` single-output covers whose function is one of the gate
//!   alphabet (AND/NAND/OR/NOR, 2-input XOR/XNOR, NOT, BUF).
//!
//! Arbitrary sum-of-products covers (including constants) are rejected with
//! a parse error: this crate models mapped, gate-level circuits, not
//! technology-independent logic.

use std::collections::HashMap;

use crate::cell::{CellId, Gate};
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// Parses a BLIF netlist.
///
/// # Errors
/// Returns [`NetlistError::Parse`] on unsupported or malformed constructs
/// and [`NetlistError::UnknownName`] on dangling references.
///
/// # Example
/// ```
/// # fn main() -> Result<(), retime_netlist::NetlistError> {
/// let src = "\
/// .model top
/// .inputs a b
/// .outputs y
/// .names a b y
/// 11 1
/// .end
/// ";
/// let n = retime_netlist::blif::parse(src)?;
/// assert_eq!(n.name(), "top");
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Netlist, NetlistError> {
    // Join continuation lines first, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let (start, mut text) = match pending.take() {
            Some((s, t)) => (s, t),
            None => (i + 1, String::new()),
        };
        if let Some(stripped) = line.strip_suffix('\\') {
            text.push_str(stripped);
            text.push(' ');
            pending = Some((start, text));
        } else {
            text.push_str(line);
            if !text.trim().is_empty() {
                logical.push((start, text));
            }
        }
    }
    if let Some((start, text)) = pending {
        if !text.trim().is_empty() {
            logical.push((start, text));
        }
    }

    struct NamesDecl {
        line: usize,
        nets: Vec<String>,
        cover: Vec<(String, char)>,
    }
    let mut model = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<(usize, String, String)> = Vec::new();
    let mut names: Vec<NamesDecl> = Vec::new();

    let mut it = logical.into_iter().peekable();
    while let Some((lno, line)) = it.next() {
        let line = line.trim();
        let perr = |m: String| NetlistError::Parse {
            line: lno,
            message: m,
        };
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap_or("");
        match head {
            ".model" => {
                model = toks.next().unwrap_or("top").to_string();
            }
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".latch" => {
                let rest: Vec<&str> = toks.collect();
                if rest.len() < 2 {
                    return Err(perr(".latch needs input and output".into()));
                }
                latches.push((lno, rest[0].to_string(), rest[1].to_string()));
            }
            ".names" => {
                let nets: Vec<String> = toks.map(str::to_string).collect();
                if nets.is_empty() {
                    return Err(perr(".names needs at least an output".into()));
                }
                let mut cover = Vec::new();
                while let Some((_, next)) = it.peek() {
                    let t = next.trim();
                    if t.starts_with('.') {
                        break;
                    }
                    let (_, row) = it.next().expect("peeked");
                    let row = row.trim();
                    let mut parts = row.split_whitespace();
                    match (parts.next(), parts.next()) {
                        (Some(inp), Some(out)) if out.len() == 1 => {
                            cover.push((inp.to_string(), out.chars().next().expect("len 1")));
                        }
                        (Some(out), None) if nets.len() == 1 && out.len() == 1 => {
                            cover.push((String::new(), out.chars().next().expect("len 1")));
                        }
                        _ => {
                            return Err(NetlistError::Parse {
                                line: lno,
                                message: format!("malformed cover row `{row}`"),
                            })
                        }
                    }
                }
                names.push(NamesDecl {
                    line: lno,
                    nets,
                    cover,
                });
            }
            ".end" => break,
            other => {
                return Err(perr(format!("unsupported BLIF construct `{other}`")));
            }
        }
    }

    let mut n = Netlist::new(model);
    let mut ids: HashMap<String, CellId> = HashMap::new();
    for i in &inputs {
        ids.insert(i.clone(), n.add_input(i.clone()));
    }
    // Declare latches and gates first (placeholder fanin), resolve later.
    for (lno, _d, q) in &latches {
        if ids.contains_key(q) {
            return Err(NetlistError::Parse {
                line: *lno,
                message: format!("net `{q}` defined twice"),
            });
        }
        let id = n.add_gate(q.clone(), Gate::Dff, &[CellId(0)])?;
        ids.insert(q.clone(), id);
    }
    for d in &names {
        let out = d.nets.last().expect("nonempty").clone();
        if ids.contains_key(&out) {
            return Err(NetlistError::Parse {
                line: d.line,
                message: format!("net `{out}` defined twice"),
            });
        }
        let n_in = d.nets.len() - 1;
        let gate = classify_cover(n_in, &d.cover).ok_or_else(|| NetlistError::Parse {
            line: d.line,
            message: format!(
                "unsupported cover for `{out}` ({} rows, {} inputs): only mapped \
                 AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF covers are accepted",
                d.cover.len(),
                n_in
            ),
        })?;
        let id = n.add_gate(out.clone(), gate, &vec![CellId(0); n_in])?;
        ids.insert(out, id);
    }
    // Resolve fanins.
    for (lno, dnet, q) in &latches {
        let drv = ids.get(dnet).copied().ok_or(NetlistError::Parse {
            line: *lno,
            message: format!("latch input `{dnet}` undefined"),
        })?;
        n.set_fanin_internal(ids[q], vec![drv]);
    }
    for d in &names {
        let out = d.nets.last().expect("nonempty");
        let fanin: Result<Vec<CellId>, NetlistError> = d.nets[..d.nets.len() - 1]
            .iter()
            .map(|net| {
                ids.get(net)
                    .copied()
                    .ok_or_else(|| NetlistError::UnknownName(net.clone()))
            })
            .collect();
        n.set_fanin_internal(ids[out], fanin?);
    }
    for o in &outputs {
        let drv = ids
            .get(o)
            .copied()
            .ok_or_else(|| NetlistError::UnknownName(o.clone()))?;
        n.add_output(format!("{o}__po"), drv)?;
    }
    n.validate()?;
    Ok(n)
}

/// Recognizes the cover of a standard gate. Returns `None` for anything
/// outside the supported alphabet.
fn classify_cover(n_in: usize, cover: &[(String, char)]) -> Option<Gate> {
    if n_in == 0 || cover.is_empty() {
        return None;
    }
    if cover.iter().any(|(row, _)| row.len() != n_in) {
        return None;
    }
    let out = cover[0].1;
    if cover.iter().any(|(_, o)| *o != out) {
        return None;
    }
    let all_ones = |row: &str| row.bytes().all(|b| b == b'1');
    let all_zeros = |row: &str| row.bytes().all(|b| b == b'0');
    // Single row covers.
    if cover.len() == 1 {
        let row = cover[0].0.as_str();
        if n_in == 1 {
            return match (row, out) {
                ("1", '1') | ("0", '0') => Some(Gate::Buf),
                ("0", '1') | ("1", '0') => Some(Gate::Not),
                _ => None,
            };
        }
        if all_ones(row) {
            return Some(if out == '1' { Gate::And } else { Gate::Nand });
        }
        if all_zeros(row) && out == '0' {
            return Some(Gate::Or); // OFF-set of OR is the all-zero row.
        }
        if all_zeros(row) && out == '1' {
            return Some(Gate::Nor); // ON-set of NOR is the all-zero row.
        }
        return None;
    }
    // Multi-row: OR-style covers (one hot '1' per row, rest '-').
    let one_hot = |c: char| {
        cover.len() == n_in
            && (0..n_in).all(|k| {
                cover
                    .iter()
                    .filter(|(row, _)| {
                        row.as_bytes()[k] == c as u8
                            && row
                                .bytes()
                                .enumerate()
                                .all(|(j, b)| if j == k { true } else { b == b'-' })
                    })
                    .count()
                    == 1
            })
    };
    if one_hot('1') {
        return Some(if out == '1' { Gate::Or } else { Gate::Nand });
    }
    if one_hot('0') {
        return Some(if out == '1' { Gate::Nand } else { Gate::And });
    }
    // 2-input XOR / XNOR.
    if n_in == 2 && cover.len() == 2 {
        let mut rows: Vec<&str> = cover.iter().map(|(r, _)| r.as_str()).collect();
        rows.sort_unstable();
        let parity_odd = rows == ["01", "10"];
        let parity_even = rows == ["00", "11"];
        if parity_odd {
            return Some(if out == '1' { Gate::Xor } else { Gate::Xnor });
        }
        if parity_even {
            return Some(if out == '1' { Gate::Xnor } else { Gate::Xor });
        }
    }
    None
}

/// Writes a netlist as BLIF.
///
/// Flip-flops become `.latch` statements; master/slave latch pairs are
/// emitted as `.latch` with a `re`/`al` hint comment is *not* attempted —
/// latch-converted netlists are better exchanged through
/// [`crate::bench::write`], so this writer requires a flip-flop style
/// netlist.
///
/// # Errors
/// Returns [`NetlistError::WrongSequentialStyle`] when the netlist contains
/// master/slave latches.
pub fn write(n: &Netlist) -> Result<String, NetlistError> {
    if !n.masters().is_empty() || !n.slaves().is_empty() {
        return Err(NetlistError::WrongSequentialStyle(
            "BLIF writer handles flip-flop netlists; use bench::write for latch designs".into(),
        ));
    }
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", n.name()));
    let ins: Vec<&str> = n
        .inputs()
        .iter()
        .map(|&i| n.cell(i).name.as_str())
        .collect();
    out.push_str(&format!(".inputs {}\n", ins.join(" ")));
    let outs: Vec<&str> = n
        .outputs()
        .iter()
        .map(|&o| n.cell(n.cell(o).fanin[0]).name.as_str())
        .collect();
    out.push_str(&format!(".outputs {}\n", outs.join(" ")));
    for c in n.cells() {
        match c.gate {
            Gate::Dff => {
                let d = &n.cell(c.fanin[0]).name;
                out.push_str(&format!(".latch {} {} re clk 0\n", d, c.name));
            }
            g if g.is_combinational() => {
                let ins: Vec<&str> = c.fanin.iter().map(|&f| n.cell(f).name.as_str()).collect();
                out.push_str(&format!(".names {} {}\n", ins.join(" "), c.name));
                out.push_str(&cover_for(g, c.fanin.len()));
            }
            _ => {}
        }
    }
    out.push_str(".end\n");
    Ok(out)
}

fn cover_for(g: Gate, n_in: usize) -> String {
    let ones = "1".repeat(n_in);
    let zeros = "0".repeat(n_in);
    match g {
        Gate::Buf => "1 1\n".into(),
        Gate::Not => "0 1\n".into(),
        Gate::And => format!("{ones} 1\n"),
        Gate::Nand => format!("{ones} 0\n"),
        Gate::Nor => format!("{zeros} 1\n"),
        Gate::Or => {
            let mut s = String::new();
            for k in 0..n_in {
                let mut row = vec![b'-'; n_in];
                row[k] = b'1';
                s.push_str(&format!("{} 1\n", String::from_utf8(row).expect("ascii")));
            }
            s
        }
        Gate::Xor => "10 1\n01 1\n".into(),
        Gate::Xnor => "00 1\n11 1\n".into(),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
.model demo
.inputs a b c
.outputs y z
.latch n1 q re clk 0
.names a b n1
11 1
.names q c y
0- 1
-0 1
.names a q z
10 1
01 1
.end
";

    #[test]
    fn parse_sample() {
        let n = parse(SAMPLE).unwrap();
        assert_eq!(n.name(), "demo");
        let s = n.stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.gates, 3);
        assert_eq!(n.cell(n.find("n1").unwrap()).gate, Gate::And);
        assert_eq!(n.cell(n.find("y").unwrap()).gate, Gate::Nand);
        assert_eq!(n.cell(n.find("z").unwrap()).gate, Gate::Xor);
    }

    #[test]
    fn round_trip() {
        let n = parse(SAMPLE).unwrap();
        let text = write(&n).unwrap();
        let n2 = parse(&text).unwrap();
        assert_eq!(n.stats(), n2.stats());
        for c in n.cells() {
            if c.gate == Gate::Output {
                continue;
            }
            let id2 = n2.find(&c.name).unwrap();
            assert_eq!(c.gate, n2.cell(id2).gate, "gate mismatch for {}", c.name);
        }
    }

    #[test]
    fn classify_gates() {
        let c = |rows: &[(&str, char)]| -> Vec<(String, char)> {
            rows.iter().map(|(r, o)| (r.to_string(), *o)).collect()
        };
        assert_eq!(classify_cover(2, &c(&[("11", '1')])), Some(Gate::And));
        assert_eq!(classify_cover(3, &c(&[("111", '0')])), Some(Gate::Nand));
        assert_eq!(classify_cover(2, &c(&[("00", '1')])), Some(Gate::Nor));
        assert_eq!(
            classify_cover(2, &c(&[("1-", '1'), ("-1", '1')])),
            Some(Gate::Or)
        );
        assert_eq!(
            classify_cover(2, &c(&[("0-", '1'), ("-0", '1')])),
            Some(Gate::Nand)
        );
        assert_eq!(classify_cover(1, &c(&[("0", '1')])), Some(Gate::Not));
        assert_eq!(classify_cover(1, &c(&[("1", '1')])), Some(Gate::Buf));
        assert_eq!(
            classify_cover(2, &c(&[("10", '1'), ("01", '1')])),
            Some(Gate::Xor)
        );
        assert_eq!(
            classify_cover(2, &c(&[("11", '1'), ("00", '1')])),
            Some(Gate::Xnor)
        );
        // Arbitrary cover rejected.
        assert_eq!(classify_cover(3, &c(&[("1-0", '1'), ("011", '1')])), None);
    }

    #[test]
    fn rejects_constant() {
        let src = ".model k\n.inputs a\n.outputs y\n.names y\n1\n.end\n";
        assert!(matches!(parse(src), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn rejects_unknown_construct() {
        let src = ".model k\n.subckt foo a=b\n.end\n";
        assert!(matches!(parse(src), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn continuation_lines() {
        let src = ".model k\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let n = parse(src).unwrap();
        assert_eq!(n.stats().inputs, 2);
    }

    #[test]
    fn writer_rejects_latch_style() {
        let n = parse(SAMPLE).unwrap().to_master_slave().unwrap();
        assert!(matches!(
            write(&n),
            Err(NetlistError::WrongSequentialStyle(_))
        ));
    }
}
