//! Error type for netlist construction and I/O.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell name was used twice.
    DuplicateName(String),
    /// A referenced cell or net name does not exist.
    UnknownName(String),
    /// A gate was given an illegal number of inputs.
    BadArity {
        /// The offending cell's name.
        cell: String,
        /// Number of fanins supplied.
        got: usize,
    },
    /// The combinational portion of the netlist contains a cycle.
    CombinationalCycle {
        /// Name of a cell on the cycle.
        witness: String,
    },
    /// A parse error in `.bench` or BLIF input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The netlist is structurally inconsistent (dangling reference etc.).
    Inconsistent(String),
    /// An operation required flip-flops but the netlist has a different
    /// sequential style (or vice versa).
    WrongSequentialStyle(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate cell name `{n}`"),
            NetlistError::UnknownName(n) => write!(f, "unknown cell or net name `{n}`"),
            NetlistError::BadArity { cell, got } => {
                write!(f, "cell `{cell}` has an illegal fanin count of {got}")
            }
            NetlistError::CombinationalCycle { witness } => {
                write!(f, "combinational cycle through cell `{witness}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Inconsistent(m) => write!(f, "inconsistent netlist: {m}"),
            NetlistError::WrongSequentialStyle(m) => {
                write!(f, "wrong sequential style: {m}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetlistError::DuplicateName("g1".into());
        assert_eq!(e.to_string(), "duplicate cell name `g1`");
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
