//! The combinational retiming view of a latch-based circuit.
//!
//! Following Section III of the paper, the circuit is *cut at its
//! (master) latches*: the resulting [`CombCloud`] is a DAG whose
//!
//! * **sources** are master-latch outputs (and primary inputs, which the
//!   retiming formulation treats as registered, exactly like the `I1`/`I2`
//!   inputs of the paper's Fig. 4),
//! * **sinks** are master-latch D-pins (and primary outputs, "in reality
//!   the input of a fixed master latch"),
//! * interior nodes are combinational gates.
//!
//! Slave latches are *not* nodes of the cloud: they are the movable
//! elements. Their position is a [`crate::Cut`]; initially every slave
//! sits at its master's output, i.e. at a source.

use std::collections::HashMap;

use crate::cell::{CellId, Gate};
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// Index of a node inside a [`CombCloud`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role of a cloud node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Data launch point. `master` is the master-latch cell when the source
    /// is a latch output, or `None` for a primary input.
    Source {
        /// Backing master latch, if any.
        master: Option<CellId>,
    },
    /// A combinational gate, backed by the netlist cell `cell`.
    Gate {
        /// Backing netlist cell.
        cell: CellId,
        /// The gate's logic function.
        gate: Gate,
    },
    /// Data capture point (a potential error-detecting master).
    Sink {
        /// Backing master latch, if any (`None` for a primary output).
        master: Option<CellId>,
    },
}

/// A node of the combinational cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloudNode {
    /// Debug / report name (net name of the backing cell).
    pub name: String,
    /// Role.
    pub kind: NodeKind,
    /// Predecessors.
    pub fanin: Vec<NodeId>,
    /// Successors.
    pub fanout: Vec<NodeId>,
}

impl CloudNode {
    /// Whether this node is a source.
    pub fn is_source(&self) -> bool {
        matches!(self.kind, NodeKind::Source { .. })
    }

    /// Whether this node is a sink.
    pub fn is_sink(&self) -> bool {
        matches!(self.kind, NodeKind::Sink { .. })
    }

    /// Whether this node is an interior gate.
    pub fn is_gate(&self) -> bool {
        matches!(self.kind, NodeKind::Gate { .. })
    }
}

/// A directed edge of the cloud, used to describe latch positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CloudEdge {
    /// Tail node.
    pub from: NodeId,
    /// Head node.
    pub to: NodeId,
}

/// The combinational retiming DAG (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombCloud {
    name: String,
    nodes: Vec<CloudNode>,
    sources: Vec<NodeId>,
    sinks: Vec<NodeId>,
    topo: Vec<NodeId>,
    /// For each netlist cell: the cloud node producing its value, if any.
    producer_of_cell: Vec<Option<NodeId>>,
    /// For each netlist cell: the sink node capturing its D pin (masters,
    /// flip-flops, and output markers), if any.
    sink_of_cell: Vec<Option<NodeId>>,
}

impl CombCloud {
    /// Extracts the cloud from a netlist.
    ///
    /// Accepts either sequential style:
    /// * flip-flop netlists — each [`Gate::Dff`] contributes one source
    ///   (its Q) and one sink (its D);
    /// * master/slave latch netlists — each [`Gate::LatchMaster`]
    ///   contributes source + sink, and [`Gate::LatchSlave`] cells are
    ///   bypassed (they are the movable elements, not part of the DAG).
    ///
    /// # Errors
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic clouds and
    /// [`NetlistError::Inconsistent`] for malformed sequential structure.
    pub fn extract(n: &Netlist) -> Result<CombCloud, NetlistError> {
        n.validate()?;
        let mut nodes: Vec<CloudNode> = Vec::new();
        let mut sources = Vec::new();
        let mut sinks = Vec::new();

        // Map: netlist cell -> cloud node that *produces* its value in the
        // cloud (for sequential cells this is the source node of Q).
        let mut producer: HashMap<CellId, NodeId> = HashMap::new();

        let push = |nodes: &mut Vec<CloudNode>, name: String, kind: NodeKind| -> NodeId {
            let id = NodeId(nodes.len() as u32);
            nodes.push(CloudNode {
                name,
                kind,
                fanin: Vec::new(),
                fanout: Vec::new(),
            });
            id
        };

        // Pass 1: create nodes.
        for (i, c) in n.cells().iter().enumerate() {
            let id = CellId(i as u32);
            match c.gate {
                Gate::Input => {
                    let s = push(
                        &mut nodes,
                        c.name.clone(),
                        NodeKind::Source { master: None },
                    );
                    sources.push(s);
                    producer.insert(id, s);
                }
                Gate::Dff | Gate::LatchMaster => {
                    let s = push(
                        &mut nodes,
                        format!("{}.q", c.name),
                        NodeKind::Source { master: Some(id) },
                    );
                    sources.push(s);
                    producer.insert(id, s);
                }
                Gate::LatchSlave => {
                    // Transparent: fanouts read the master's source node.
                    // Resolved in pass 2 via the slave's fanin.
                }
                Gate::Output => {}
                _ => {
                    let g = push(
                        &mut nodes,
                        c.name.clone(),
                        NodeKind::Gate {
                            cell: id,
                            gate: c.gate,
                        },
                    );
                    producer.insert(id, g);
                }
            }
        }
        // Resolve slave bypass: a slave's producer is its master's source.
        for (i, c) in n.cells().iter().enumerate() {
            if c.gate == Gate::LatchSlave {
                let master = c.fanin[0];
                let src = *producer.get(&master).ok_or_else(|| {
                    NetlistError::Inconsistent(format!(
                        "slave `{}` is not fed by a master latch",
                        c.name
                    ))
                })?;
                if !matches!(n.cell(master).gate, Gate::LatchMaster) {
                    return Err(NetlistError::Inconsistent(format!(
                        "slave `{}` is fed by non-master `{}`",
                        c.name,
                        n.cell(master).name
                    )));
                }
                producer.insert(CellId(i as u32), src);
            }
        }

        // Helper to resolve a fanin cell to its producing cloud node.
        let resolve =
            |producer: &HashMap<CellId, NodeId>, f: CellId| -> Result<NodeId, NetlistError> {
                producer.get(&f).copied().ok_or_else(|| {
                    NetlistError::Inconsistent(format!(
                        "cell `{}` has no producing cloud node",
                        n.cell(f).name
                    ))
                })
            };

        // Pass 2: sink nodes + edges.
        let mut sink_map: HashMap<CellId, NodeId> = HashMap::new();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, c) in n.cells().iter().enumerate() {
            let id = CellId(i as u32);
            match c.gate {
                Gate::Dff | Gate::LatchMaster => {
                    let t = NodeId(nodes.len() as u32);
                    nodes.push(CloudNode {
                        name: format!("{}.d", c.name),
                        kind: NodeKind::Sink { master: Some(id) },
                        fanin: Vec::new(),
                        fanout: Vec::new(),
                    });
                    sinks.push(t);
                    sink_map.insert(id, t);
                    let drv = resolve(&producer, c.fanin[0])?;
                    edges.push((drv, t));
                }
                Gate::Output => {
                    let t = NodeId(nodes.len() as u32);
                    nodes.push(CloudNode {
                        name: c.name.clone(),
                        kind: NodeKind::Sink { master: None },
                        fanin: Vec::new(),
                        fanout: Vec::new(),
                    });
                    sinks.push(t);
                    sink_map.insert(id, t);
                    let drv = resolve(&producer, c.fanin[0])?;
                    edges.push((drv, t));
                }
                Gate::LatchSlave | Gate::Input => {}
                _ => {
                    let g = producer[&id];
                    for &f in &c.fanin {
                        let drv = resolve(&producer, f)?;
                        edges.push((drv, g));
                    }
                }
            }
        }
        for (u, v) in edges {
            nodes[u.index()].fanout.push(v);
            nodes[v.index()].fanin.push(u);
        }

        let mut producer_of_cell = vec![None; n.len()];
        for (cell, node) in &producer {
            producer_of_cell[cell.index()] = Some(*node);
        }
        let mut sink_of_cell = vec![None; n.len()];
        for (cell, node) in &sink_map {
            sink_of_cell[cell.index()] = Some(*node);
        }

        let mut cloud = CombCloud {
            name: n.name().to_string(),
            nodes,
            sources,
            sinks,
            topo: Vec::new(),
            producer_of_cell,
            sink_of_cell,
        };
        cloud.topo = cloud.compute_topo()?;
        Ok(cloud)
    }

    /// The cloud node producing the value of netlist cell `c`, if any.
    ///
    /// Gates map to their own node, inputs / flip-flops / masters to their
    /// source node, slaves to their master's source node. Output markers
    /// have no producer.
    pub fn producer_of_cell(&self, c: CellId) -> Option<NodeId> {
        self.producer_of_cell.get(c.index()).copied().flatten()
    }

    /// The sink node capturing netlist cell `c`'s D pin (flip-flops,
    /// masters, and output markers), if any.
    pub fn sink_of_cell(&self, c: CellId) -> Option<NodeId> {
        self.sink_of_cell.get(c.index()).copied().flatten()
    }

    /// Number of netlist cells this cloud was extracted from.
    pub fn cell_count(&self) -> usize {
        self.producer_of_cell.len()
    }

    fn compute_topo(&self) -> Result<Vec<NodeId>, NetlistError> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self.nodes.iter().map(|nd| nd.fanin.len()).collect();
        let mut queue: Vec<NodeId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.nodes[u.index()].fanout {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n {
            let witness = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| self.nodes[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { witness });
        }
        Ok(order)
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[CloudNode] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &CloudNode {
        &self.nodes[id.index()]
    }

    /// Source nodes (launch points).
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Sink nodes (capture points / potential EDL masters).
    pub fn sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// A topological order of all nodes (sources first).
    pub fn topo(&self) -> &[NodeId] {
        &self.topo
    }

    /// Iterates over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = CloudEdge> + '_ {
        self.nodes.iter().enumerate().flat_map(|(i, nd)| {
            nd.fanout.iter().map(move |&v| CloudEdge {
                from: NodeId(i as u32),
                to: v,
            })
        })
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|nd| nd.fanout.len()).sum()
    }

    /// Finds a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|nd| nd.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Nodes in the fan-in cone of `t` (inclusive of `t`), found by reverse
    /// BFS. Used for the paper's `FIC(t)` computations.
    pub fn fanin_cone(&self, t: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![t];
        let mut cone = Vec::new();
        seen[t.index()] = true;
        while let Some(u) = stack.pop() {
            cone.push(u);
            for &p in &self.nodes[u.index()].fanin {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        cone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    fn sample() -> Netlist {
        bench::parse(
            "sample",
            "\
INPUT(a)
OUTPUT(z)
q1 = DFF(g2)
g1 = AND(a, q1)
g2 = NOT(g1)
z = OR(g1, q1)
",
        )
        .unwrap()
    }

    #[test]
    fn extract_from_ff_netlist() {
        let cloud = CombCloud::extract(&sample()).unwrap();
        // Sources: a, q1.q  — Sinks: q1.d, z__po
        assert_eq!(cloud.sources().len(), 2);
        assert_eq!(cloud.sinks().len(), 2);
        // Gates: g1, g2, z
        let gates = cloud.nodes().iter().filter(|n| n.is_gate()).count();
        assert_eq!(gates, 3);
        assert_eq!(cloud.topo().len(), cloud.len());
    }

    #[test]
    fn extract_from_latch_netlist_matches_ff() {
        let ff = sample();
        let ms = ff.to_master_slave().unwrap();
        let c1 = CombCloud::extract(&ff).unwrap();
        let c2 = CombCloud::extract(&ms).unwrap();
        assert_eq!(c1.sources().len(), c2.sources().len());
        assert_eq!(c1.sinks().len(), c2.sinks().len());
        assert_eq!(c1.len(), c2.len());
        assert_eq!(c1.edge_count(), c2.edge_count());
    }

    #[test]
    fn topo_respects_edges() {
        let cloud = CombCloud::extract(&sample()).unwrap();
        let pos: std::collections::HashMap<NodeId, usize> = cloud
            .topo()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        for e in cloud.edges() {
            assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    #[test]
    fn fanin_cone_of_sink() {
        let cloud = CombCloud::extract(&sample()).unwrap();
        let z = cloud.find("z").unwrap(); // the OR gate feeding the PO sink
        let cone = cloud.fanin_cone(z);
        // z's cone: z, g1, a, q1.q
        assert_eq!(cone.len(), 4);
    }

    #[test]
    fn edge_count_consistent() {
        let cloud = CombCloud::extract(&sample()).unwrap();
        assert_eq!(cloud.edges().count(), cloud.edge_count());
        let fanin_total: usize = cloud.nodes().iter().map(|n| n.fanin.len()).sum();
        assert_eq!(fanin_total, cloud.edge_count());
    }
}
