//! Cells: the vertices of a [`crate::Netlist`].

use std::fmt;

/// Index of a cell inside its owning [`crate::Netlist`].
///
/// `CellId`s are dense (0..n) and stable for the lifetime of the netlist;
/// cells are never removed, only transformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u32);

impl CellId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The logic function (or sequential role) of a cell.
///
/// The combinational subset matches the gate alphabet of the ISCAS89
/// `.bench` format. Sequential cells distinguish edge-triggered flip-flops
/// (the original benchmark form) from the master/slave level-sensitive
/// latches they are converted into for two-phase resilient operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Primary input (no fanin).
    Input,
    /// Primary output marker (exactly one fanin, no logic).
    Output,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Not,
    /// N-input AND.
    And,
    /// N-input NAND.
    Nand,
    /// N-input OR.
    Or,
    /// N-input NOR.
    Nor,
    /// N-input XOR (odd parity).
    Xor,
    /// N-input XNOR (even parity).
    Xnor,
    /// Positive-edge D flip-flop (one fanin: D).
    Dff,
    /// Master latch of a converted flip-flop (transparent during φ1̄;
    /// fixed in place by the retiming flows).
    LatchMaster,
    /// Slave latch of a converted flip-flop (transparent during φ2;
    /// repositioned by retiming).
    LatchSlave,
}

impl Gate {
    /// Whether the cell is sequential (stores state).
    pub fn is_sequential(self) -> bool {
        matches!(self, Gate::Dff | Gate::LatchMaster | Gate::LatchSlave)
    }

    /// Whether the cell computes a combinational function of its inputs.
    pub fn is_combinational(self) -> bool {
        matches!(
            self,
            Gate::Buf
                | Gate::Not
                | Gate::And
                | Gate::Nand
                | Gate::Or
                | Gate::Nor
                | Gate::Xor
                | Gate::Xnor
        )
    }

    /// Legal fanin range for the gate, as `(min, max)`.
    pub fn arity(self) -> (usize, usize) {
        match self {
            Gate::Input => (0, 0),
            Gate::Output | Gate::Buf | Gate::Not => (1, 1),
            Gate::Dff | Gate::LatchMaster | Gate::LatchSlave => (1, 1),
            Gate::And | Gate::Nand | Gate::Or | Gate::Nor => (1, usize::MAX),
            Gate::Xor | Gate::Xnor => (1, usize::MAX),
        }
    }

    /// Evaluates the gate on boolean inputs.
    ///
    /// Sequential and I/O cells pass their (single) input through; this is
    /// the combinational evaluation used by functional simulation once
    /// state elements have been handled by the simulator.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            Gate::Input => false,
            Gate::Output | Gate::Buf | Gate::Dff | Gate::LatchMaster | Gate::LatchSlave => {
                inputs[0]
            }
            Gate::Not => !inputs[0],
            Gate::And => inputs.iter().all(|&b| b),
            Gate::Nand => !inputs.iter().all(|&b| b),
            Gate::Or => inputs.iter().any(|&b| b),
            Gate::Nor => !inputs.iter().any(|&b| b),
            Gate::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            Gate::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// The `.bench` keyword for this gate, if it has one.
    pub fn bench_name(self) -> Option<&'static str> {
        Some(match self {
            Gate::Buf => "BUFF",
            Gate::Not => "NOT",
            Gate::And => "AND",
            Gate::Nand => "NAND",
            Gate::Or => "OR",
            Gate::Nor => "NOR",
            Gate::Xor => "XOR",
            Gate::Xnor => "XNOR",
            Gate::Dff => "DFF",
            Gate::LatchMaster => "LATCHM",
            Gate::LatchSlave => "LATCHS",
            Gate::Input | Gate::Output => return None,
        })
    }

    /// Parses a `.bench` gate keyword (case-insensitive).
    pub fn from_bench_name(s: &str) -> Option<Gate> {
        Some(match s.to_ascii_uppercase().as_str() {
            "BUF" | "BUFF" => Gate::Buf,
            "NOT" | "INV" => Gate::Not,
            "AND" => Gate::And,
            "NAND" => Gate::Nand,
            "OR" => Gate::Or,
            "NOR" => Gate::Nor,
            "XOR" => Gate::Xor,
            "XNOR" => Gate::Xnor,
            "DFF" => Gate::Dff,
            "LATCHM" => Gate::LatchMaster,
            "LATCHS" => Gate::LatchSlave,
            _ => return None,
        })
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Input => write!(f, "INPUT"),
            Gate::Output => write!(f, "OUTPUT"),
            other => write!(f, "{}", other.bench_name().unwrap_or("?")),
        }
    }
}

/// A single cell of the netlist: a named gate with its fanin connections.
///
/// Fanout is maintained by the owning [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance / net name (the cell's output net shares its name).
    pub name: String,
    /// Logic function or sequential role.
    pub gate: Gate,
    /// Driver cells of this cell's input pins, in pin order.
    pub fanin: Vec<CellId>,
}

impl Cell {
    /// Creates a new cell.
    pub fn new(name: impl Into<String>, gate: Gate, fanin: Vec<CellId>) -> Self {
        Cell {
            name: name.into(),
            gate,
            fanin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_classification() {
        assert!(Gate::Dff.is_sequential());
        assert!(Gate::LatchMaster.is_sequential());
        assert!(!Gate::Nand.is_sequential());
        assert!(Gate::Nand.is_combinational());
        assert!(!Gate::Input.is_combinational());
        assert!(!Gate::Output.is_combinational());
    }

    #[test]
    fn gate_eval_basic() {
        assert!(Gate::And.eval(&[true, true]));
        assert!(!Gate::And.eval(&[true, false]));
        assert!(Gate::Nand.eval(&[true, false]));
        assert!(Gate::Or.eval(&[false, true]));
        assert!(!Gate::Nor.eval(&[false, true]));
        assert!(Gate::Xor.eval(&[true, false, false]));
        assert!(!Gate::Xor.eval(&[true, true]));
        assert!(Gate::Xnor.eval(&[true, true]));
        assert!(Gate::Not.eval(&[false]));
        assert!(Gate::Buf.eval(&[true]));
    }

    #[test]
    fn gate_eval_multi_input_parity() {
        // 5-input XOR = odd parity.
        assert!(Gate::Xor.eval(&[true, true, true, false, false]));
        assert!(!Gate::Xor.eval(&[true, true, false, false, false]));
    }

    #[test]
    fn bench_name_round_trip() {
        for g in [
            Gate::Buf,
            Gate::Not,
            Gate::And,
            Gate::Nand,
            Gate::Or,
            Gate::Nor,
            Gate::Xor,
            Gate::Xnor,
            Gate::Dff,
        ] {
            let name = g.bench_name().expect("named gate");
            assert_eq!(Gate::from_bench_name(name), Some(g));
        }
        assert_eq!(Gate::from_bench_name("nand"), Some(Gate::Nand));
        assert_eq!(Gate::from_bench_name("bogus"), None);
    }

    #[test]
    fn arity_bounds() {
        assert_eq!(Gate::Input.arity(), (0, 0));
        assert_eq!(Gate::Not.arity(), (1, 1));
        assert_eq!(Gate::And.arity().0, 1);
    }

    #[test]
    fn cell_id_display_and_index() {
        let id = CellId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "c7");
    }
}
