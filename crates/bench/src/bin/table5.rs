//! Table V: total area — Base-Retiming vs RVL-RAR vs G-RAR.

use retime_bench::{f2, load_suite, map_cases, mean, pct_impr, print_table, run_approaches};
use retime_liberty::{EdlOverhead, Library};

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let per_case = map_cases(&cases, |case| {
        let mut row = vec![case.circuit.spec.name.to_string()];
        let mut rvl_impr = [0.0f64; 3];
        let mut g_impr = [0.0f64; 3];
        for (k, c) in EdlOverhead::SWEEP.into_iter().enumerate() {
            let a = run_approaches(case, &lib, c).expect("flows run");
            let base = a.base.total_area;
            let rvl = a.rvl.outcome.total_area;
            let g = a.grar.outcome.total_area;
            rvl_impr[k] = pct_impr(base, rvl);
            g_impr[k] = pct_impr(base, g);
            row.extend([
                f2(base),
                f2(rvl),
                f2(pct_impr(base, rvl)),
                f2(g),
                f2(pct_impr(base, g)),
            ]);
        }
        (row, rvl_impr, g_impr)
    });
    let mut rows = Vec::new();
    let mut rvl_avg: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut g_avg: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (row, rvl_impr, g_impr) in per_case {
        for k in 0..3 {
            rvl_avg[k].push(rvl_impr[k]);
            g_avg[k].push(g_impr[k]);
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for k in 0..3 {
        avg.extend([
            String::new(),
            String::new(),
            f2(mean(&rvl_avg[k])),
            String::new(),
            f2(mean(&g_avg[k])),
        ]);
    }
    rows.push(avg);
    print_table(
        "Table V: total area (Base vs RVL-RAR vs G-RAR)",
        &[
            "Circuit", "Base(L)", "RVL(L)", "RVLImpr%", "G(L)", "GImpr%", "Base(M)", "RVL(M)",
            "RVLImpr%", "G(M)", "GImpr%", "Base(H)", "RVL(H)", "RVLImpr%", "G(H)", "GImpr%",
        ],
        &rows,
    );
    println!("(paper averages, G-RAR: 6.96 / 9.52 / 14.73 %; RVL: −0.29 / 2.85 / 9.59 %)");
}
