//! Table VI: number of slave and error-detecting master latches decided
//! by the three approaches.

use retime_bench::{load_suite, map_cases, print_table, run_approaches};
use retime_liberty::{EdlOverhead, Library};

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let per_case = map_cases(&cases, |case| {
        let mut per_c: Vec<[String; 6]> = Vec::new();
        for c in EdlOverhead::SWEEP {
            let a = run_approaches(case, &lib, c).expect("flows run");
            per_c.push([
                a.base.seq.slaves.to_string(),
                a.base.seq.edl.to_string(),
                a.rvl.outcome.seq.slaves.to_string(),
                a.rvl.outcome.seq.edl.to_string(),
                a.grar.outcome.seq.slaves.to_string(),
                a.grar.outcome.seq.edl.to_string(),
            ]);
        }
        let mut case_rows = Vec::new();
        for (approach, idx) in [("Base", 0usize), ("RVL", 2), ("G", 4)] {
            case_rows.push(vec![
                case.circuit.spec.name.to_string(),
                approach.to_string(),
                per_c[0][idx].clone(),
                per_c[0][idx + 1].clone(),
                per_c[1][idx].clone(),
                per_c[1][idx + 1].clone(),
                per_c[2][idx].clone(),
                per_c[2][idx + 1].clone(),
            ]);
        }
        case_rows
    });
    let rows: Vec<Vec<String>> = per_case.into_iter().flatten().collect();
    print_table(
        "Table VI: slave and error-detecting master latch counts",
        &[
            "Circuit",
            "Approach",
            "slave#(L)",
            "EDL#(L)",
            "slave#(M)",
            "EDL#(M)",
            "slave#(H)",
            "EDL#(H)",
        ],
        &rows,
    );
    println!("(paper: G-RAR assigns the fewest EDLs on circuits above s1238; RVL's EDL count tracks the NCE count)");
}
