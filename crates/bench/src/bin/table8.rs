//! Table VIII: error-rate (%) comparison by random-input timed
//! simulation.

use retime_bench::{load_suite, map_cases, mean, print_table, run_approaches};
use retime_liberty::{EdlOverhead, Library};
use retime_sim::{error_rate, ErrorRateConfig};

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let cfg = ErrorRateConfig {
        cycles: 2000,
        seed: 0xE0_5EED,
    };
    let per_case = map_cases(&cases, |case| {
        let cloud = &case.circuit.cloud;
        let mut row = vec![case.circuit.spec.name.to_string()];
        let mut rates = [0.0f64; 9];
        let mut col = 0;
        for c in EdlOverhead::SWEEP {
            let a = run_approaches(case, &lib, c).expect("flows run");
            // Each flow is simulated with *its* final delays (including
            // any legalization upsizing), as a signoff would.
            for (cut, ed, delays) in [
                (&a.base.cut, &a.base.ed_sinks, &a.base.final_delays),
                (
                    &a.rvl.outcome.cut,
                    &a.rvl.outcome.ed_sinks,
                    &a.rvl.outcome.final_delays,
                ),
                (
                    &a.grar.outcome.cut,
                    &a.grar.outcome.ed_sinks,
                    &a.grar.outcome.final_delays,
                ),
            ] {
                let rep = error_rate(cloud, delays, &case.clock, cut, ed, &cfg);
                rates[col] = rep.rate_percent();
                row.push(format!("{:.2}", rep.rate_percent()));
                col += 1;
            }
        }
        (row, rates)
    });
    let mut rows = Vec::new();
    let mut avgs: Vec<Vec<f64>> = vec![Vec::new(); 9];
    for (row, rates) in per_case {
        for (col, r) in rates.into_iter().enumerate() {
            avgs[col].push(r);
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for a in &avgs {
        avg.push(format!("{:.2}", mean(a)));
    }
    rows.push(avg);
    print_table(
        "Table VIII: error-rate (%) comparison",
        &[
            "Circuit", "Base(L)", "RVL(L)", "G(L)", "Base(M)", "RVL(M)", "G(M)", "Base(H)",
            "RVL(H)", "G(H)",
        ],
        &rows,
    );
    println!("(paper averages: Base 21.02 %, RVL ≈ 1.96 %, G 14.84 / 9.04 / 9.05 %)");
}
