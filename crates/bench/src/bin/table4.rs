//! Table IV: sequential logic area — Base-Retiming vs RVL-RAR vs G-RAR.
//!
//! With `RETIME_DELAY_MODE=statistical`, a second section re-runs the
//! three flows under the first-order statistical delay model and
//! reports the yield picture per circuit: worst per-sink timing yield
//! at the clock period, yield-aware EDL count, and the
//! jitter-sensitivity column `d yield / d σ_clock`.

use retime_bench::{
    delay_mode_from_env, f2, load_suite, map_cases, mean, print_table, table4_row, table4_stat_row,
};
use retime_liberty::Library;
use retime_sta::DelayModel;

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let per_case = map_cases(&cases, |case| table4_row(case, &lib));
    let mut rows = Vec::new();
    let mut rvl_avg: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut g_avg: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (row, rvl_impr, g_impr) in per_case {
        for k in 0..3 {
            rvl_avg[k].push(rvl_impr[k]);
            g_avg[k].push(g_impr[k]);
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for k in 0..3 {
        avg.extend([
            String::new(),
            String::new(),
            f2(mean(&rvl_avg[k])),
            String::new(),
            f2(mean(&g_avg[k])),
        ]);
    }
    rows.push(avg);
    print_table(
        "Table IV: sequential logic area (Base vs RVL-RAR vs G-RAR)",
        &[
            "Circuit", "Base(L)", "RVL(L)", "RVLImpr%", "G(L)", "GImpr%", "Base(M)", "RVL(M)",
            "RVLImpr%", "G(M)", "GImpr%", "Base(H)", "RVL(H)", "RVLImpr%", "G(H)", "GImpr%",
        ],
        &rows,
    );
    println!("(paper averages, G-RAR: 20.41 / 23.87 / 29.62 % for low / medium / high)");

    let model = delay_mode_from_env();
    if let DelayModel::Statistical(params) = model {
        let stat_rows = map_cases(&cases, |case| table4_stat_row(case, &lib, model));
        print_table(
            &format!(
                "Table IV (statistical, c=medium): yield-aware EDL at target yield {:.4}",
                params.yield_target()
            ),
            &[
                "Circuit", "Base", "RVL", "G-RAR", "MinYield", "EDL", "dY/dsigc",
            ],
            &stat_rows,
        );
    }
}
