//! Table IX: fixed-master vs movable-master RVL-RAR.

use retime_bench::{f2, load_suite, map_cases, mean, print_table, Certification};
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::CombCloud;
use retime_verify::FlowKind;
use retime_vl::{forward_merge_pass, vl_retime, VlConfig, VlVariant};

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let per_case = map_cases(&cases, |case| {
        let mut row = vec![case.circuit.spec.name.to_string()];
        let mut case_diffs = [0.0f64; 3];
        // Movable masters: the forward merge pre-pass repositions master
        // latches before the standard RVL flow.
        let (moved_netlist, moves) =
            forward_merge_pass(&case.circuit.netlist, 64).expect("merge pass runs");
        let moved_cloud = CombCloud::extract(&moved_netlist).expect("cloud extracts");
        for (k, c) in EdlOverhead::SWEEP.into_iter().enumerate() {
            let mut fixed = vl_retime(
                &case.circuit.cloud,
                &lib,
                case.clock,
                &VlConfig::new(VlVariant::Rvl, c),
            )
            .expect("fixed RVL runs");
            let mut movable = vl_retime(
                &moved_cloud,
                &lib,
                case.clock,
                &VlConfig::new(VlVariant::Rvl, c),
            )
            .expect("movable RVL runs");
            // The movable run certifies against the merged netlist and
            // its cloud — the circuit it actually retimed (under
            // RETIME_VERIFY=1).
            Certification::of_case(case, c, FlowKind::Vl, "rvl/fixed")
                .expect_pass(&lib, &mut fixed.outcome);
            Certification::of_netlist(
                &moved_netlist,
                &moved_cloud,
                case.clock,
                c,
                FlowKind::Vl,
                format!("{} [rvl/movable]", case.circuit.spec.name),
            )
            .expect_pass(&lib, &mut movable.outcome);
            let fa = fixed.outcome.total_area;
            let ma = movable.outcome.total_area;
            let diff = if fa > 0.0 {
                100.0 * (fa - ma) / fa
            } else {
                0.0
            };
            case_diffs[k] = diff;
            row.extend([f2(fa), f2(ma), format!("{diff:.2}")]);
        }
        row.push(format!("({moves} master moves)"));
        (row, case_diffs)
    });
    let mut rows = Vec::new();
    let mut diffs: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (row, case_diffs) in per_case {
        for (k, d) in case_diffs.into_iter().enumerate() {
            diffs[k].push(d);
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for d in &diffs {
        avg.extend([String::new(), String::new(), f2(mean(d))]);
    }
    rows.push(avg);
    print_table(
        "Table IX: fixed-master vs movable-master RVL-RAR (total area)",
        &[
            "Circuit",
            "fixed(L)",
            "movable(L)",
            "diff%(L)",
            "fixed(M)",
            "movable(M)",
            "diff%(M)",
            "fixed(H)",
            "movable(H)",
            "diff%(H)",
            "notes",
        ],
        &rows,
    );
    println!("(paper averages: −0.73 / 0.01 / −0.28 % — little to no gain)");
}
