//! Table III: area comparison of the three virtual-library variants.

use retime_bench::{f2, load_suite, map_cases, mean, print_table, Certification};
use retime_liberty::{EdlOverhead, Library};
use retime_verify::FlowKind;
use retime_vl::{vl_retime, VlConfig, VlVariant};

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let per_case = map_cases(&cases, |case| {
        let mut row = vec![case.circuit.spec.name.to_string()];
        let mut areas = [0.0f64; 9];
        let mut col = 0;
        for c in EdlOverhead::SWEEP {
            for variant in [VlVariant::Nvl, VlVariant::Evl, VlVariant::Rvl] {
                let mut rep = vl_retime(
                    &case.circuit.cloud,
                    &lib,
                    case.clock,
                    &VlConfig::new(variant, c),
                )
                .expect("VL flow runs");
                Certification::of_case(case, c, FlowKind::Vl, variant.name())
                    .expect_pass(&lib, &mut rep.outcome);
                areas[col] = rep.outcome.total_area;
                row.push(f2(rep.outcome.total_area));
                col += 1;
            }
        }
        (row, areas)
    });
    let mut rows = Vec::new();
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 9];
    for (row, areas) in per_case {
        for (col, a) in areas.into_iter().enumerate() {
            sums[col].push(a);
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for s in &sums {
        avg.push(f2(mean(s)));
    }
    rows.push(avg);
    print_table(
        "Table III: area comparison of virtual library approaches (total area)",
        &[
            "Circuit", "NVL(L)", "EVL(L)", "RVL(L)", "NVL(M)", "EVL(M)", "RVL(M)", "NVL(H)",
            "EVL(H)", "RVL(H)",
        ],
        &rows,
    );
    println!("(paper: RVL matches or beats NVL and beats EVL at every overhead)");
}
