//! Table VII: run-time comparison, plus the G-RAR phase breakdown
//! backing the paper's "network simplex < 2 % of run-time" observation.

use retime_bench::{f2, load_suite, map_cases, print_table, run_approaches};
use retime_core::Stage;
use retime_liberty::{EdlOverhead, Library};

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let rows = map_cases(&cases, |case| {
        let mut row = vec![case.circuit.spec.name.to_string()];
        let mut solver_share: f64 = 0.0;
        for c in EdlOverhead::SWEEP {
            let a = run_approaches(case, &lib, c).expect("flows run");
            row.push(f2(a.base.stats.elapsed.as_secs_f64()));
            row.push(f2(a.rvl.outcome.stats.elapsed.as_secs_f64()));
            row.push(f2(a.grar.outcome.stats.elapsed.as_secs_f64()));
            solver_share = solver_share.max(100.0 * a.grar.phases.share(Stage::Solve));
        }
        row.push(format!("{solver_share:.1}%"));
        row
    });
    print_table(
        "Table VII: run-time (s) comparison (plus worst G-RAR solver share)",
        &[
            "Circuit", "Base(L)", "RVL(L)", "G(L)", "Base(M)", "RVL(M)", "G(M)", "Base(H)",
            "RVL(H)", "G(H)", "solver%",
        ],
        &rows,
    );
    println!("(paper: all ISCAS89 complete within 10 CPU minutes; Plasma < 62 min; the network-simplex step is < 2 % of G-RAR's run-time)");
}
