//! Table II: total area comparison between gate-based and path-based
//! delay G-RAR, across the three EDL overheads.

use std::time::Instant;

use retime_bench::{f2, load_suite, map_cases, mean, pct_impr, print_table, Certification};
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_retime::{AreaModel, RetimeOutcome};
use retime_sta::{DelayModel, TimingAnalysis};
use retime_verify::FlowKind;

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let per_case = map_cases(&cases, |case| {
        let mut row = vec![case.circuit.spec.name.to_string()];
        let mut imprs = [0.0f64; 3];
        for (k, c) in EdlOverhead::SWEEP.into_iter().enumerate() {
            let mut gate = grar(
                &case.circuit.cloud,
                &lib,
                case.clock,
                &GrarConfig::new(c).with_model(DelayModel::GateBased),
            )
            .expect("gate-based G-RAR runs");
            let mut path = grar(
                &case.circuit.cloud,
                &lib,
                case.clock,
                &GrarConfig::new(c).with_model(DelayModel::PathBased),
            )
            .expect("path-based G-RAR runs");
            // Each optimization run certifies against the delay model
            // that drove it (under RETIME_VERIFY=1).
            for (report, model, label) in [
                (&mut gate, DelayModel::GateBased, "grar/gate"),
                (&mut path, DelayModel::PathBased, "grar/path"),
            ] {
                Certification::of_case(case, c, FlowKind::Grar, label)
                    .with_model(model)
                    .expect_pass(&lib, &mut report.outcome);
            }
            // As in the paper, both placements are signed off by the
            // accurate (path-based) timing engine; the gate-based model
            // only drove the *optimization*.
            let mut signoff =
                TimingAnalysis::new(&case.circuit.cloud, &lib, case.clock, DelayModel::PathBased)
                    .expect("signoff sta");
            let model = AreaModel::new(&lib, c);
            let gate_signed = RetimeOutcome::assemble(
                &mut signoff,
                &model,
                gate.outcome.cut.clone(),
                std::time::Duration::ZERO,
                Instant::now(),
            )
            .expect("gate placement signs off");
            let impr = pct_impr(gate_signed.total_area, path.outcome.total_area);
            imprs[k] = impr;
            row.push(f2(gate_signed.total_area));
            row.push(f2(path.outcome.total_area));
            row.push(f2(impr));
        }
        (row, imprs)
    });
    let mut rows = Vec::new();
    let mut avgs: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (row, imprs) in per_case {
        for (k, i) in imprs.into_iter().enumerate() {
            avgs[k].push(i);
        }
        rows.push(row);
    }
    rows.push(vec![
        "average".into(),
        String::new(),
        String::new(),
        f2(mean(&avgs[0])),
        String::new(),
        String::new(),
        f2(mean(&avgs[1])),
        String::new(),
        String::new(),
        f2(mean(&avgs[2])),
    ]);
    print_table(
        "Table II: gate-based vs path-based delay G-RAR (total area)",
        &[
            "Circuit", "Gate(L)", "Path(L)", "Impr%(L)", "Gate(M)", "Path(M)", "Impr%(M)",
            "Gate(H)", "Path(H)", "Impr%(H)",
        ],
        &rows,
    );
    println!("(paper averages: 4.89 / 5.69 / 7.59 % for low / medium / high)");
}
