//! Table I: circuit information of the original flop-based designs.

use retime_bench::{load_suite, map_cases, print_table, table1_row};
use retime_liberty::{EdlOverhead, Library};
use retime_retime::AreaModel;

fn main() {
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let model = AreaModel::new(&lib, EdlOverhead::MEDIUM);
    let rows = map_cases(&cases, |case| {
        let mut row = table1_row(case, &lib, &model);
        // The setup-time column is wall-clock (non-deterministic), so it
        // lives only in the binary, not in the snapshot-tested cells.
        row.insert(4, format!("{}", case.setup_time.as_millis()));
        row
    });
    print_table(
        "Table I: circuit information of original flop-based designs",
        &[
            "Circuit",
            "P (ns)",
            "flop #",
            "NCE #",
            "Setup (ms)",
            "Area",
            "Reference",
        ],
        &rows,
    );
}
