//! Table I: circuit information of the original flop-based designs.

use retime_bench::{f2, load_suite, map_cases, print_table};
use retime_liberty::{EdlOverhead, Library};
use retime_retime::{flop_design_area, AreaModel};
use retime_sta::DelayModel;

fn main() {
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let model = AreaModel::new(&lib, EdlOverhead::MEDIUM);
    let rows = map_cases(&cases, |case| {
        let spec = &case.circuit.spec;
        let nce = case
            .circuit
            .nce_count(&lib, DelayModel::PathBased, case.clock)
            .expect("sta runs");
        let area = flop_design_area(&case.circuit.cloud, &model).expect("area computes");
        vec![
            spec.name.to_string(),
            format!("{:.3}", case.clock.max_path_delay()),
            spec.flops.to_string(),
            nce.to_string(),
            format!("{}", case.setup_time.as_millis()),
            f2(area),
            format!(
                "(paper: P={} NCE={} area={})",
                spec.paper_p, spec.nce, spec.paper_area
            ),
        ]
    });
    print_table(
        "Table I: circuit information of original flop-based designs",
        &[
            "Circuit",
            "P (ns)",
            "flop #",
            "NCE #",
            "Setup (ms)",
            "Area",
            "Reference",
        ],
        &rows,
    );
}
