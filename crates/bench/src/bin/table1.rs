//! Table I: circuit information of the original flop-based designs.

use retime_bench::{load_suite, map_cases, print_table, table1_row, verify_enabled, Certification};
use retime_liberty::{EdlOverhead, Library};
use retime_retime::{base_retime, AreaModel};
use retime_sta::DelayModel;
use retime_verify::FlowKind;

fn main() {
    let _trace = retime_bench::trace_session();
    let lib = Library::fdsoi28();
    let cases = load_suite(&lib);
    let model = AreaModel::new(&lib, EdlOverhead::MEDIUM);
    let rows = map_cases(&cases, |case| {
        if verify_enabled() {
            // Table I itself runs no retiming; under RETIME_VERIFY=1 it
            // still self-certifies a base run per case so every table
            // binary exercises the checker.
            let mut base = base_retime(
                &case.circuit.cloud,
                &lib,
                case.clock,
                DelayModel::PathBased,
                EdlOverhead::MEDIUM,
            )
            .expect("base flow runs");
            Certification::of_case(case, EdlOverhead::MEDIUM, FlowKind::Base, "base")
                .expect_pass(&lib, &mut base);
        }
        let mut row = table1_row(case, &lib, &model);
        // The setup-time column is wall-clock (non-deterministic), so it
        // lives only in the binary, not in the snapshot-tested cells.
        row.insert(4, format!("{}", case.setup_time.as_millis()));
        row
    });
    print_table(
        "Table I: circuit information of original flop-based designs",
        &[
            "Circuit",
            "P (ns)",
            "flop #",
            "NCE #",
            "Setup (ms)",
            "Area",
            "Reference",
        ],
        &rows,
    );
}
