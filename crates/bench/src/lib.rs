//! Benchmark harness regenerating every table of the paper's evaluation
//! (Section VI).
//!
//! One binary per table (`table1` … `table9`), each printing the same
//! rows the paper reports, on the calibrated synthetic suite:
//!
//! ```text
//! cargo run --release -p retime-bench --bin table5
//! ```
//!
//! The environment variable `RETIME_SUITE` selects the workload:
//! `full` (default — all twelve circuits), `small` (≤ 200 flip-flops),
//! or `tiny` (the four smallest; used by the smoke tests).
//!
//! With `RETIME_VERIFY=1`, every flow result additionally passes the
//! independent certificate checker of `retime-verify` (ILP feasibility,
//! optimality for G-RAR, timing/EDL/area recount, and functional
//! equivalence under random stimulus) before it is tabulated; the
//! verification wall-clock shows up as the `verify` phase of each
//! outcome's instrumentation.
//!
//! With `RETIME_TRACE=1`, every table binary records hierarchical
//! `retime-trace` spans and prints a self-time profile (top span names
//! by exclusive wall-clock) to stderr on exit; `RETIME_TRACE_OUT=path`
//! additionally writes the Chrome-trace JSON — load it in
//! <https://ui.perfetto.dev>. Tracing is observation-only: the stdout
//! table rows are bit-identical with it on or off (asserted by
//! `tests/trace_integration.rs`).
//!
//! Criterion benches (`benches/`) cover algorithm-level scaling:
//! network-flow engines, STA passes, cut-set construction, and
//! end-to-end G-RAR, plus the ablation studies called out in
//! `DESIGN.md`.

use std::time::Instant;

use retime_circuits::{paper_suite, SuiteCircuit};
use retime_core::{grar, grar_with_sweep, GrarConfig, GrarReport};
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::{CombCloud, Netlist};
use retime_retime::{
    base_retime, base_retime_sweep, flop_design_area, AreaModel, RetimeError, RetimeOutcome,
    RetimingSweep,
};
use retime_sta::{DelayModel, StatParams, TwoPhaseClock};
use retime_verify::{
    check_warm_solution, verify_certificate, FlowKind, VerifyOptions, VerifySetup,
};
use retime_vl::{vl_retime, vl_retime_with_sweep, VlConfig, VlReport, VlVariant};

/// A suite circuit with its calibrated clock.
pub struct BenchCase {
    /// The built circuit.
    pub circuit: SuiteCircuit,
    /// Clock calibrated to the published NCE target.
    pub clock: TwoPhaseClock,
    /// Time spent generating + calibrating.
    pub setup_time: std::time::Duration,
}

/// Which slice of the paper suite a run works on (the `RETIME_SUITE`
/// environment variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuiteMode {
    /// All twelve circuits (the default).
    #[default]
    Full,
    /// Circuits with ≤ 200 flip-flops.
    Small,
    /// The four smallest circuits (smoke tests, CI).
    Tiny,
}

impl SuiteMode {
    /// Parses a raw `RETIME_SUITE` value. `Err` carries the one-line
    /// warning to print — the same shape `RETIME_THREADS` uses (see
    /// [`retime_engine::parse_thread_override`]), so the two knobs fail
    /// the same way.
    ///
    /// # Errors
    /// Returns the warning line when the value is unrecognized.
    pub fn parse(raw: &str) -> Result<SuiteMode, String> {
        match raw {
            "full" => Ok(SuiteMode::Full),
            "small" => Ok(SuiteMode::Small),
            "tiny" => Ok(SuiteMode::Tiny),
            other => Err(format!(
                "warning: unrecognized RETIME_SUITE value {other:?}; \
                 accepted values are \"full\", \"small\", or \"tiny\" — \
                 running the full suite"
            )),
        }
    }

    /// The `RETIME_SUITE` selection, warning once on stderr for an
    /// unrecognized value (falls back to the full suite).
    pub fn from_env() -> SuiteMode {
        match std::env::var("RETIME_SUITE") {
            Ok(raw) => SuiteMode::parse(&raw).unwrap_or_else(|warning| {
                eprintln!("{warning}");
                SuiteMode::Full
            }),
            Err(_) => SuiteMode::Full,
        }
    }

    /// Restricts the suite definition to this slice.
    pub fn select(
        self,
        specs: Vec<retime_circuits::CircuitSpec>,
    ) -> Vec<retime_circuits::CircuitSpec> {
        match self {
            SuiteMode::Full => specs,
            SuiteMode::Small => specs.into_iter().filter(|s| s.flops <= 200).collect(),
            SuiteMode::Tiny => specs.into_iter().take(4).collect(),
        }
    }
}

/// Loads the benchmark suite honoring `RETIME_SUITE`
/// (`full` | `small` | `tiny`), building and calibrating the circuits in
/// parallel (`RETIME_THREADS` caps the fan-out). Case order always
/// follows the suite definition regardless of thread count.
///
/// An unrecognized `RETIME_SUITE` value falls back to the full suite
/// with a warning on stderr.
///
/// # Panics
/// Panics if a circuit fails to build — the suite is deterministic, so
/// this only happens on programming errors.
pub fn load_suite(lib: &Library) -> Vec<BenchCase> {
    let specs = SuiteMode::from_env().select(paper_suite());
    retime_engine::parallel_map(0, &specs, |spec| build_case(spec, lib))
}

/// Builds and calibrates one suite circuit.
///
/// # Panics
/// Panics if the circuit fails to build (programming error — the suite
/// is deterministic).
pub fn build_case(spec: &retime_circuits::CircuitSpec, lib: &Library) -> BenchCase {
    let t0 = Instant::now();
    let circuit = spec.build().expect("deterministic suite builds");
    let clock = circuit
        .calibrated_clock(lib, DelayModel::PathBased)
        .expect("calibration succeeds");
    BenchCase {
        circuit,
        clock,
        setup_time: t0.elapsed(),
    }
}

/// The three flows the paper compares (Tables IV–VIII).
pub struct Approaches {
    /// Resiliency-unaware base retiming.
    pub base: RetimeOutcome,
    /// RVL-RAR (the best virtual-library variant).
    pub rvl: VlReport,
    /// G-RAR.
    pub grar: GrarReport,
}

/// Whether `RETIME_VERIFY=1` requested self-certification of every flow
/// result (one switch shared by all table binaries).
pub fn verify_enabled() -> bool {
    retime_verify::enabled()
}

/// Starts the shared trace session every table binary opens first thing
/// in `main` — `RETIME_TRACE=1` turns span recording on,
/// `RETIME_TRACE_OUT=path` additionally writes the Chrome-trace JSON
/// (load it in <https://ui.perfetto.dev>). The returned guard must stay
/// alive for the whole run; dropping it prints the self-time profile to
/// stderr, so the table rows on stdout stay byte-identical either way.
pub fn trace_session() -> retime_trace::TraceSession {
    retime_trace::TraceSession::from_env()
}

/// One certification request against the independent checker of
/// `retime-verify` — the single home of the `RETIME_VERIFY` plumbing
/// that used to be hand-rolled in every table binary.
///
/// The common shape ([`Certification::of_case`]) certifies against a
/// suite case's own netlist, clock, and the path-based delay model;
/// Table II's per-delay-model runs override the model with
/// [`Certification::with_model`], and Table IX's movable-master runs
/// certify against the merged netlist via [`Certification::of_netlist`].
/// `retime-serve` drives the same type for `verify: true` jobs.
pub struct Certification<'a> {
    /// The circuit the flow actually retimed.
    pub netlist: &'a Netlist,
    /// Its retiming view.
    pub cloud: &'a CombCloud,
    /// The clock the flow ran under.
    pub clock: TwoPhaseClock,
    /// The delay model that drove the optimization.
    pub model: DelayModel,
    /// EDL overhead `c`.
    pub overhead: EdlOverhead,
    /// Which flow produced the outcome.
    pub kind: FlowKind,
    /// Names the run in the failure message.
    pub label: String,
}

impl<'a> Certification<'a> {
    /// A request against a suite case's circuit with the default
    /// path-based delay model; the failure label becomes
    /// `"<circuit> [<label>]"`.
    pub fn of_case(
        case: &'a BenchCase,
        c: EdlOverhead,
        kind: FlowKind,
        label: &str,
    ) -> Certification<'a> {
        Certification::of_netlist(
            &case.circuit.netlist,
            &case.circuit.cloud,
            case.clock,
            c,
            kind,
            format!("{} [{label}]", case.circuit.spec.name),
        )
    }

    /// A request against an explicit netlist/cloud pair (Table IX's
    /// merged netlists, `retime-serve`'s inline submissions).
    pub fn of_netlist(
        netlist: &'a Netlist,
        cloud: &'a CombCloud,
        clock: TwoPhaseClock,
        c: EdlOverhead,
        kind: FlowKind,
        label: String,
    ) -> Certification<'a> {
        Certification {
            netlist,
            cloud,
            clock,
            model: DelayModel::PathBased,
            overhead: c,
            kind,
            label,
        }
    }

    /// Overrides the delay model (Table II certifies each run against
    /// the model that drove it).
    #[must_use]
    pub fn with_model(mut self, model: DelayModel) -> Certification<'a> {
        self.model = model;
        self
    }

    /// Runs the checker unconditionally and merges the verification
    /// wall-clock and counters into the outcome's phase instrumentation
    /// (`Stage::Verify`).
    ///
    /// # Errors
    /// Returns [`RetimeError::Internal`] carrying the checker's
    /// diagnosis when the certificate is rejected.
    pub fn run(&self, lib: &Library, outcome: &mut RetimeOutcome) -> Result<(), RetimeError> {
        let setup = VerifySetup {
            netlist: self.netlist,
            cloud: self.cloud,
            lib,
            clock: self.clock,
            model: self.model,
            overhead: self.overhead,
        };
        let report = verify_certificate(&setup, self.kind, outcome, &VerifyOptions::default())
            .map_err(|e| {
                RetimeError::Internal(format!("certificate rejected for {}: {e}", self.label))
            })?;
        outcome.phases.merge(&report.phases);
        Ok(())
    }

    /// The table-binary guard: a no-op unless `RETIME_VERIFY=1`
    /// requested certification, then [`Certification::run`].
    ///
    /// # Panics
    /// Panics with the checker's diagnosis when the certificate is
    /// rejected.
    pub fn expect_pass(&self, lib: &Library, outcome: &mut RetimeOutcome) {
        if verify_enabled() {
            self.run(lib, outcome).expect("certificate accepted");
        }
    }
}

/// The delay model the table binaries run under — the
/// `RETIME_DELAY_MODE` environment knob: `path` (default), `gate`, or
/// `statistical` (alias `stat`). Statistical mode starts from
/// [`StatParams::DEFAULT`] and layers the `RETIME_YIELD` /
/// `RETIME_SIGMA` / `RETIME_CLOCK_SIGMA` / `RETIME_STAT_SEED` knobs on
/// top ([`retime_stat::params_from_env`]). An unrecognized value warns
/// once on stderr and falls back to path-based, following the
/// `RETIME_SUITE` convention.
pub fn delay_mode_from_env() -> DelayModel {
    match std::env::var("RETIME_DELAY_MODE") {
        Ok(raw) => match raw.trim() {
            "path" => DelayModel::PathBased,
            "gate" => DelayModel::GateBased,
            "statistical" | "stat" => {
                DelayModel::Statistical(retime_stat::params_from_env(StatParams::DEFAULT))
            }
            other => {
                eprintln!(
                    "warning: unrecognized RETIME_DELAY_MODE value {other:?}; accepted values \
                     are \"path\", \"gate\", or \"statistical\" — using the path-based model"
                );
                DelayModel::PathBased
            }
        },
        Err(_) => DelayModel::PathBased,
    }
}

/// Runs base retiming, RVL-RAR, and G-RAR on one case. With
/// `RETIME_VERIFY=1`, each of the three results must additionally pass
/// the independent certificate checker.
///
/// # Errors
/// Propagates flow failures and rejected certificates.
pub fn run_approaches(
    case: &BenchCase,
    lib: &Library,
    c: EdlOverhead,
) -> Result<Approaches, RetimeError> {
    run_approaches_model(case, lib, c, DelayModel::PathBased)
}

/// [`run_approaches`] under an explicit delay model — the statistical
/// Table IV section drives all three flows with
/// `DelayModel::Statistical`, and `RETIME_VERIFY=1` certifies each
/// outcome against the model that drove it (statistical certificates
/// include the exact `StatSummary` replay and the Monte Carlo yield
/// cross-check).
///
/// # Errors
/// Propagates flow failures and rejected certificates.
pub fn run_approaches_model(
    case: &BenchCase,
    lib: &Library,
    c: EdlOverhead,
    model: DelayModel,
) -> Result<Approaches, RetimeError> {
    let cloud = &case.circuit.cloud;
    let mut base = base_retime(cloud, lib, case.clock, model, c)?;
    let mut rvl = vl_retime(
        cloud,
        lib,
        case.clock,
        &VlConfig::new(VlVariant::Rvl, c).with_model(model),
    )?;
    let mut g = grar(
        cloud,
        lib,
        case.clock,
        &GrarConfig::new(c).with_model(model),
    )?;
    if verify_enabled() {
        Certification::of_case(case, c, FlowKind::Base, "base")
            .with_model(model)
            .run(lib, &mut base)?;
        Certification::of_case(case, c, FlowKind::Vl, "rvl")
            .with_model(model)
            .run(lib, &mut rvl.outcome)?;
        Certification::of_case(case, c, FlowKind::Grar, "grar")
            .with_model(model)
            .run(lib, &mut g.outcome)?;
    }
    Ok(Approaches { base, rvl, grar: g })
}

/// Per-flow warm-start slots carried across an overhead sweep on one
/// case. Each flow re-solves the *same* Eq. 14 instance per `c` — only
/// demands (G-RAR's pseudo overhead) or nothing at all (base/RVL, whose
/// cuts don't depend on `c`) change between probes — so one primed
/// [`RetimingSweep`] per flow turns the sweep's repeat solves into
/// warm hits or delta re-routes instead of cold re-primes.
#[derive(Default)]
pub struct WarmSlots {
    /// Base retiming's instance.
    pub base: Option<RetimingSweep>,
    /// RVL-RAR's instance.
    pub rvl: Option<RetimingSweep>,
    /// G-RAR's instance.
    pub grar: Option<RetimingSweep>,
}

impl WarmSlots {
    /// Aggregate sweep counters across the three flows' primed slots.
    pub fn stats(&self) -> retime_flow::SweepStats {
        let mut total = retime_flow::SweepStats::default();
        for slot in [&self.base, &self.rvl, &self.grar] {
            let Some(sweep) = slot else { continue };
            let s = sweep.stats();
            total.warm_hits += s.warm_hits;
            total.cost_resumes += s.cost_resumes;
            total.demand_deltas += s.demand_deltas;
            total.cold_solves += s.cold_solves;
            total.repair_pivots += s.repair_pivots;
        }
        total
    }

    /// Certifies every primed slot's most recent warm flow solution
    /// against an independent cold solve of the same instance
    /// ([`check_warm_solution`]): the warm result must be a *proven*
    /// optimum (bounds, conservation, cost recount, complementary
    /// slackness) with the cold objective.
    ///
    /// # Errors
    /// Surfaces [`retime_verify::VerifyError::WarmStartMismatch`] as an
    /// internal flow error naming the offending flow.
    pub fn certify(&self) -> Result<(), RetimeError> {
        for (label, slot) in [
            ("base", &self.base),
            ("rvl", &self.rvl),
            ("grar", &self.grar),
        ] {
            let Some(sweep) = slot else { continue };
            let Some(warm) = sweep.warm_solution() else {
                continue;
            };
            let cold = sweep
                .flow()
                .solve_reference()
                .map_err(|e| RetimeError::Internal(format!("{label} warm reference solve: {e}")))?;
            check_warm_solution(sweep.flow(), warm, &cold).map_err(|e| {
                RetimeError::Internal(format!("{label} warm certificate rejected: {e}"))
            })?;
        }
        Ok(())
    }
}

/// [`run_approaches`] with warm-start slots threaded through all three
/// flows — the overhead-sweep call sites (Table IV, the serve worker)
/// keep one [`WarmSlots`] per case so consecutive `c` probes resume the
/// previous basis instead of re-priming from scratch. With
/// `RETIME_VERIFY=1` every warm flow solution is additionally certified
/// against an independent cold solve before the row is accepted.
///
/// # Errors
/// Propagates flow failures, rejected certificates, and warm/cold
/// mismatches.
pub fn run_approaches_with(
    case: &BenchCase,
    lib: &Library,
    c: EdlOverhead,
    slots: &mut WarmSlots,
) -> Result<Approaches, RetimeError> {
    let cloud = &case.circuit.cloud;
    let mut base = base_retime_sweep(
        cloud,
        lib,
        case.clock,
        DelayModel::PathBased,
        c,
        &mut slots.base,
    )?;
    let mut rvl = vl_retime_with_sweep(
        cloud,
        lib,
        case.clock,
        &VlConfig::new(VlVariant::Rvl, c),
        &mut slots.rvl,
    )?;
    let mut g = grar_with_sweep(cloud, lib, case.clock, &GrarConfig::new(c), &mut slots.grar)?;
    if verify_enabled() {
        Certification::of_case(case, c, FlowKind::Base, "base").run(lib, &mut base)?;
        Certification::of_case(case, c, FlowKind::Vl, "rvl").run(lib, &mut rvl.outcome)?;
        Certification::of_case(case, c, FlowKind::Grar, "grar").run(lib, &mut g.outcome)?;
        slots.certify()?;
    }
    Ok(Approaches { base, rvl, grar: g })
}

/// Runs all three flows on every case in parallel (`RETIME_THREADS` caps
/// the fan-out). The result vector is index-aligned with `cases`, so
/// table output order is deterministic regardless of thread count.
///
/// # Errors
/// Each case reports its own flow failures.
pub fn run_suite(
    cases: &[BenchCase],
    lib: &Library,
    c: EdlOverhead,
) -> Vec<Result<Approaches, RetimeError>> {
    map_cases(cases, |case| run_approaches(case, lib, c))
}

/// Applies `f` to every case in parallel, preserving case order in the
/// result — the shared skeleton of the table binaries. Use this instead
/// of a `for` loop whenever per-case work is independent.
pub fn map_cases<T: Send>(cases: &[BenchCase], f: impl Fn(&BenchCase) -> T + Sync) -> Vec<T> {
    retime_engine::parallel_map(0, cases, f)
}

/// The deterministic Table I cells of one case: name, clock, flop count,
/// NCE count, flop-design area, and the paper reference. Shared by the
/// `table1` binary (which splices in its volatile setup-time column) and
/// the golden snapshot test.
///
/// # Panics
/// Panics if STA or the area model fails (programming error — the suite
/// circuits always time and cost out).
pub fn table1_row(case: &BenchCase, lib: &Library, model: &AreaModel<'_>) -> Vec<String> {
    let spec = &case.circuit.spec;
    let nce = case
        .circuit
        .nce_count(lib, DelayModel::PathBased, case.clock)
        .expect("sta runs");
    let area = flop_design_area(&case.circuit.cloud, model).expect("area computes");
    vec![
        spec.name.to_string(),
        format!("{:.3}", case.clock.max_path_delay()),
        spec.flops.to_string(),
        nce.to_string(),
        f2(area),
        format!(
            "(paper: P={} NCE={} area={})",
            spec.paper_p, spec.nce, spec.paper_area
        ),
    ]
}

/// The Table IV cells of one case — per EDL overhead of
/// [`EdlOverhead::SWEEP`]: base, RVL, RVL improvement %, G-RAR, G-RAR
/// improvement % — plus the raw per-overhead improvement percentages for
/// the table's average row. Shared by the `table4` binary and the golden
/// snapshot test.
///
/// # Panics
/// Panics if a flow fails (the suite circuits are always feasible).
pub fn table4_row(case: &BenchCase, lib: &Library) -> (Vec<String>, [f64; 3], [f64; 3]) {
    let mut row = vec![case.circuit.spec.name.to_string()];
    let mut rvl_impr = [0.0f64; 3];
    let mut g_impr = [0.0f64; 3];
    let mut slots = WarmSlots::default();
    for (k, c) in EdlOverhead::SWEEP.into_iter().enumerate() {
        let a = run_approaches_with(case, lib, c, &mut slots).expect("flows run");
        let base = a.base.seq.total();
        let rvl = a.rvl.outcome.seq.total();
        let g = a.grar.outcome.seq.total();
        rvl_impr[k] = pct_impr(base, rvl);
        g_impr[k] = pct_impr(base, g);
        row.extend([
            f2(base),
            f2(rvl),
            f2(pct_impr(base, rvl)),
            f2(g),
            f2(pct_impr(base, g)),
        ]);
    }
    (row, rvl_impr, g_impr)
}

/// The statistical Table IV cells of one case, at medium EDL overhead:
/// the three flows' sequential areas under the statistical model, then
/// G-RAR's yield picture. The yield and jitter columns are evaluated at
/// the worst endpoint the yield-aware rule did *not* flag — the sinks
/// whose timing the circuit must actually meet at `Π` (flagged
/// endpoints time into the resiliency window by design, so the global
/// minimum is a constant ~0 and says nothing). `MinYield` is that
/// endpoint's timing yield at the clock period and `dY/dsigc` its
/// `d yield / d σ_clock` by finite difference (≤ 0, since more jitter
/// can only hurt). Shared by the `table4` binary's statistical section
/// and its golden snapshot test.
///
/// # Panics
/// Panics if a flow fails, `model` is not statistical, or the outcome
/// carries no summary.
pub fn table4_stat_row(case: &BenchCase, lib: &Library, model: DelayModel) -> Vec<String> {
    assert!(
        matches!(model, DelayModel::Statistical(_)),
        "table4_stat_row wants a statistical model"
    );
    let a = run_approaches_model(case, lib, EdlOverhead::MEDIUM, model).expect("flows run");
    let outcome = &a.grar.outcome;
    let stat = outcome
        .stat
        .as_ref()
        .expect("statistical mode attaches a summary");
    let st = retime_stat::StatTiming::new(&case.circuit.cloud, &outcome.final_delays, case.clock);
    let canons = st.cut_sink_canons(&outcome.cut);
    let worst_uncovered = (0..canons.len())
        .filter(|&i| !st.needs_edl(&canons[i]))
        .min_by(|&i, &j| stat.yields[i].total_cmp(&stat.yields[j]));
    let (cov_yield, cov_sens) = worst_uncovered.map_or((1.0, 0.0), |i| {
        (stat.yields[i], st.jitter_sensitivity(&canons[i]))
    });
    vec![
        case.circuit.spec.name.to_string(),
        f2(a.base.seq.total()),
        f2(a.rvl.outcome.seq.total()),
        f2(a.grar.outcome.seq.total()),
        format!("{cov_yield:.4}"),
        a.grar.outcome.seq.edl.to_string(),
        format!("{cov_sens:.3}"),
    ]
}

/// Percent improvement of `new` over `base` (positive = smaller/better).
pub fn pct_impr(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (base - new) / base
    }
}

/// Prints an aligned table with a title row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    println!("{line}");
    let header: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:>w$} "))
        .collect();
    println!("{}", header.join("|"));
    println!("{line}");
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:>w$} "))
            .collect();
        println!("{}", cells.join("|"));
    }
    println!("{line}");
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_runs_all_flows() {
        std::env::set_var("RETIME_SUITE", "tiny");
        let lib = Library::fdsoi28();
        let cases = load_suite(&lib);
        assert_eq!(cases.len(), 4);
        for case in &cases {
            let a = run_approaches(case, &lib, EdlOverhead::MEDIUM)
                .unwrap_or_else(|e| panic!("{} failed: {e}", case.circuit.spec.name));
            // The paper's headline ordering on sequential cost.
            assert!(
                a.grar.outcome.seq.total() <= a.base.seq.total() + 1e-6,
                "{}: G-RAR seq {} vs base {}",
                case.circuit.spec.name,
                a.grar.outcome.seq.total(),
                a.base.seq.total()
            );
        }
        std::env::remove_var("RETIME_SUITE");
    }

    #[test]
    fn parallel_suite_runs_are_deterministic() {
        // Two parallel runs over the same cases must yield identical
        // table rows, in the same order.
        let lib = Library::fdsoi28();
        let specs: Vec<_> = paper_suite().into_iter().take(3).collect();
        let cases: Vec<BenchCase> = specs.iter().map(|s| build_case(s, &lib)).collect();
        let row = |a: &Approaches| {
            vec![
                f2(a.base.seq.total()),
                f2(a.rvl.outcome.seq.total()),
                f2(a.grar.outcome.seq.total()),
                f2(a.grar.outcome.total_area),
                a.grar.targets.to_string(),
                a.grar.predicted_saved.to_string(),
            ]
        };
        let first: Vec<Vec<String>> = run_suite(&cases, &lib, EdlOverhead::MEDIUM)
            .iter()
            .map(|r| row(r.as_ref().expect("flows run")))
            .collect();
        let second: Vec<Vec<String>> = run_suite(&cases, &lib, EdlOverhead::MEDIUM)
            .iter()
            .map(|r| row(r.as_ref().expect("flows run")))
            .collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), cases.len());
    }

    #[test]
    fn suite_mode_parses_known_values() {
        assert_eq!(SuiteMode::parse("full"), Ok(SuiteMode::Full));
        assert_eq!(SuiteMode::parse("small"), Ok(SuiteMode::Small));
        assert_eq!(SuiteMode::parse("tiny"), Ok(SuiteMode::Tiny));
    }

    #[test]
    fn suite_mode_warns_on_garbage_like_thread_override() {
        // The two env knobs fail the same way: a one-line
        // `warning: unrecognized <VAR> value "<raw>"; …` message.
        for raw in ["Tiny", "medium", ""] {
            let warning = SuiteMode::parse(raw).unwrap_err();
            assert!(
                warning.starts_with("warning: unrecognized RETIME_SUITE value"),
                "unexpected warning shape: {warning}"
            );
            assert!(warning.contains(&format!("{raw:?}")));
        }
        let threads = retime_engine::parse_thread_override("garbage").unwrap_err();
        assert!(threads.starts_with("warning: unrecognized RETIME_THREADS value"));
    }

    #[test]
    fn suite_mode_selects_slices() {
        let all = paper_suite();
        let n = all.len();
        assert_eq!(SuiteMode::Full.select(paper_suite()).len(), n);
        assert_eq!(SuiteMode::Tiny.select(paper_suite()).len(), 4);
        assert!(SuiteMode::Small
            .select(paper_suite())
            .iter()
            .all(|s| s.flops <= 200));
    }

    #[test]
    fn pct_impr_signs() {
        assert!(pct_impr(100.0, 90.0) > 0.0);
        assert!(pct_impr(100.0, 110.0) < 0.0);
        assert_eq!(pct_impr(0.0, 5.0), 0.0);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
