//! Tracing integration tests.
//!
//! The enabled flag of `retime-trace` is process-global, so every test
//! that toggles it lives in this one file, serialized by a gate mutex
//! (each integration-test *file* is its own binary; tests in other files
//! never see the flag flipped).
//!
//! * **Golden structure.** A fixed, single-threaded G-RAR run on the
//!   paper's Fig. 4 instance is exported and compared against a golden
//!   snapshot of the structure-stable fields only — span names, nesting
//!   depth, and counter attributes. Timestamps, durations, ids, and
//!   thread ids are normalized away. Regenerate after an intentional
//!   change with
//!   `UPDATE_GOLDEN=1 cargo test -p retime-bench --test trace_integration`.
//! * **Chrome-trace validity.** The same export must pass
//!   [`retime_trace::check_chrome_trace`] (parse + nesting check).
//! * **Bit-identity.** The `table1` / `table4` row logic must produce
//!   byte-identical rows with tracing enabled and disabled — tracing is
//!   observation-only.

use std::path::PathBuf;
use std::sync::Mutex;

use retime_bench::{build_case, map_cases, table1_row, table4_row, BenchCase};
use retime_circuits::{paper_suite, Fig4};
use retime_core::{grar, grar_with_sweep, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_retime::{AreaModel, SolverEngine};
use retime_sta::{DelayModel, StatParams, TimingAnalysis, TwoPhaseClock};
use retime_trace::{SpanRecord, Value};

/// Serializes every test that records spans or toggles the global flag.
static GATE: Mutex<()> = Mutex::new(());

/// Runs `f` with tracing enabled and returns its value plus the spans it
/// recorded, leaving tracing disabled and the sink drained.
fn with_tracing<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanRecord>) {
    let _ = retime_trace::take_records();
    retime_trace::set_enabled(true);
    let out = f();
    retime_trace::set_enabled(false);
    (out, retime_trace::take_records())
}

/// A clock loose enough for G-RAR to be feasible on Fig. 4 under the
/// library delays (the suite's calibration scheme).
fn feasible_clock(cloud: &retime_netlist::CombCloud, lib: &Library) -> TwoPhaseClock {
    let sta = TimingAnalysis::new(
        cloud,
        lib,
        TwoPhaseClock::from_max_delay(1.0),
        DelayModel::PathBased,
    )
    .expect("probe sta builds");
    let crit = cloud
        .sinks()
        .iter()
        .map(|&t| sta.df(t))
        .fold(0.0f64, f64::max);
    let latch = lib.latch();
    TwoPhaseClock::from_max_delay((crit + latch.d_to_q + latch.clk_to_q) / 0.7)
}

/// Renders the structure-stable view of a record list: depth-indented
/// span names with their attributes, no timestamps / ids / thread ids.
fn structure(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&"  ".repeat(r.depth as usize));
        out.push_str(r.name);
        for (k, v) in &r.attrs {
            match v {
                Value::U64(n) => out.push_str(&format!(" {k}={n}")),
                Value::F64(x) => out.push_str(&format!(" {k}={x}")),
                Value::Str(s) => out.push_str(&format!(" {k}={s}")),
            }
        }
        out.push('\n');
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "{name} drifted from its golden snapshot; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn fig4_grar_trace_matches_golden_structure() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let fig = Fig4::new();
    let lib = Library::fdsoi28();
    let clock = feasible_clock(&fig.cloud, &lib);
    // threads(1) keeps the run on this thread: one tid, one deterministic
    // record order, deterministic counter values.
    let (_, records) = with_tracing(|| {
        grar(
            &fig.cloud,
            &lib,
            clock,
            &GrarConfig::new(EdlOverhead::MEDIUM).with_threads(1),
        )
        .expect("grar on fig4")
    });
    assert!(!records.is_empty(), "the traced run recorded no spans");

    // The export of the same records must be a valid Chrome trace.
    let text = retime_trace::chrome_trace(&records);
    let check = retime_trace::check_chrome_trace(&text).expect("export validates");
    assert_eq!(check.events, records.len());

    check_golden("fig4_trace.txt", &structure(&records));
}

#[test]
fn fig4_grar_simplex_trace_matches_golden_structure() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let fig = Fig4::new();
    let lib = Library::fdsoi28();
    let clock = feasible_clock(&fig.cloud, &lib);
    // Same fixed run as above but through the network-simplex engine:
    // the golden additionally pins the pivot-batch span structure — the
    // selected rule name and the pivot_count / degenerate_pivots
    // counters (Fig. 4 is small, so `Auto` resolves deterministically
    // to first-eligible).
    let (_, records) = with_tracing(|| {
        grar(
            &fig.cloud,
            &lib,
            clock,
            &GrarConfig::new(EdlOverhead::MEDIUM)
                .with_threads(1)
                .with_engine(SolverEngine::NetworkSimplex),
        )
        .expect("grar on fig4 via network simplex")
    });
    assert!(!records.is_empty(), "the traced run recorded no spans");

    let text = retime_trace::chrome_trace(&records);
    let check = retime_trace::check_chrome_trace(&text).expect("export validates");
    assert_eq!(check.events, records.len());

    check_golden("fig4_trace_simplex.txt", &structure(&records));
}

#[test]
fn fig4_statistical_grar_trace_matches_golden_structure() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let fig = Fig4::new();
    let lib = Library::fdsoi28();
    let clock = feasible_clock(&fig.cloud, &lib);
    // The same fixed run under the statistical delay model: the golden
    // additionally pins the canonical-form propagation spans — every
    // cut timed during the flow emits a `stat_cut_arrivals` span whose
    // `iterations` counter must stay at the proven reduced-iteration
    // bound of two sweeps.
    let (_, records) = with_tracing(|| {
        grar(
            &fig.cloud,
            &lib,
            clock,
            &GrarConfig::new(EdlOverhead::MEDIUM)
                .with_threads(1)
                .with_model(DelayModel::Statistical(StatParams::DEFAULT)),
        )
        .expect("statistical grar on fig4")
    });
    let stat_spans: Vec<&SpanRecord> = records
        .iter()
        .filter(|r| r.name == "stat_cut_arrivals")
        .collect();
    assert!(
        !stat_spans.is_empty(),
        "statistical mode must trace its canonical propagation"
    );
    for span in stat_spans {
        let iterations = span.attrs.iter().find_map(|(k, v)| match v {
            Value::U64(n) if *k == "iterations" => Some(*n),
            _ => None,
        });
        assert!(
            matches!(iterations, Some(1..=2)),
            "reduced-iteration bound violated: {:?}",
            span.attrs
        );
    }

    let text = retime_trace::chrome_trace(&records);
    let check = retime_trace::check_chrome_trace(&text).expect("export validates");
    assert_eq!(check.events, records.len());

    check_golden("fig4_trace_stat.txt", &structure(&records));
}

#[test]
fn fig4_warm_sweep_trace_matches_golden_structure() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let fig = Fig4::new();
    let lib = Library::fdsoi28();
    let clock = feasible_clock(&fig.cloud, &lib);
    // The overhead sweep through one persistent warm slot: the first
    // probe primes the basis cold, the re-spins go through `solve_warm`
    // — the golden pins the dispatch (`path` attribute / `warm_hits`
    // counter) and, on repaired probes, the `rule` / `repair_pivots`
    // counters of the resumed simplex.
    let mut slot = None;
    let (_, records) = with_tracing(|| {
        for c in EdlOverhead::SWEEP {
            grar_with_sweep(
                &fig.cloud,
                &lib,
                clock,
                &GrarConfig::new(c).with_threads(1),
                &mut slot,
            )
            .expect("grar warm sweep on fig4");
        }
    });
    assert!(!records.is_empty(), "the traced sweep recorded no spans");
    assert!(
        records.iter().any(|r| r.name == "solve_warm"),
        "re-spins must route through the warm solver"
    );

    let text = retime_trace::chrome_trace(&records);
    let check = retime_trace::check_chrome_trace(&text).expect("export validates");
    assert_eq!(check.events, records.len());

    check_golden("fig4_trace_warm.txt", &structure(&records));
}

#[test]
fn table_rows_are_bit_identical_with_tracing_on_and_off() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let lib = Library::fdsoi28();
    let cases: Vec<BenchCase> = paper_suite()
        .into_iter()
        .take(2)
        .map(|spec| build_case(&spec, &lib))
        .collect();
    let model = AreaModel::new(&lib, EdlOverhead::MEDIUM);

    let table1 = |cases: &[BenchCase]| map_cases(cases, |case| table1_row(case, &lib, &model));
    let table4 = |cases: &[BenchCase]| -> Vec<Vec<String>> {
        map_cases(cases, |case| table4_row(case, &lib))
            .into_iter()
            .map(|(row, _, _)| row)
            .collect()
    };

    let t1_off = table1(&cases);
    let t4_off = table4(&cases);
    let ((t1_on, t4_on), records) = with_tracing(|| (table1(&cases), table4(&cases)));

    assert_eq!(t1_off, t1_on, "table1 rows changed under tracing");
    assert_eq!(t4_off, t4_on, "table4 rows changed under tracing");
    assert!(
        !records.is_empty(),
        "the traced table runs recorded no spans"
    );
}
