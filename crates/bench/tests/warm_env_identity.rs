//! `RETIME_WARM` golden bit-identity: the table binaries must print the
//! same bytes with warm starts forced off (`0`), forced on (`1`), and
//! left in the default heuristic (`auto`). Warm-starting is a pure
//! solver-level optimization — if any cell moves, the warm basis leaked
//! into the result and the contract of `retime_flow::WarmMode` is
//! broken.
//!
//! The binaries run as subprocesses so each mode gets its own process
//! environment — `RETIME_WARM` is read by every solve, and mutating the
//! test harness's own environment would race the other threads.

use std::process::Command;

/// Runs a table binary on the tiny suite with the given `RETIME_WARM`
/// value and returns its stdout.
fn run_table(bin: &str, warm: &str) -> String {
    let out = Command::new(bin)
        .env("RETIME_SUITE", "tiny")
        .env("RETIME_WARM", warm)
        .env_remove("RETIME_VERIFY")
        .env_remove("RETIME_TRACE")
        .output()
        .expect("table binary spawns");
    assert!(
        out.status.success(),
        "{bin} failed under RETIME_WARM={warm}:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("table output is UTF-8")
}

#[test]
fn table4_stdout_is_bit_identical_across_warm_modes() {
    let bin = env!("CARGO_BIN_EXE_table4");
    let cold = run_table(bin, "0");
    let warm = run_table(bin, "1");
    let auto = run_table(bin, "auto");
    assert_eq!(
        cold, warm,
        "table4 rows moved when warm starts were forced on"
    );
    assert_eq!(
        cold, auto,
        "table4 rows moved under the default warm heuristic"
    );
}

/// Masks the wall-clock "Setup (ms)" column of a table1 data row —
/// data rows are exactly the lines carrying the paper reference cell.
/// Alignment widths depend on the masked value, so rows are re-joined
/// with single spaces.
fn scrub_table1(stdout: &str) -> String {
    stdout
        .lines()
        .map(|line| {
            if !line.contains("(paper:") {
                return line.to_string();
            }
            // Circuit, P, flops, NCE, Setup(ms), Area, (paper: ...).
            let mut fields: Vec<&str> = line.split('|').map(str::trim).collect();
            if fields.len() > 4 {
                fields.remove(4);
            }
            fields.join(" | ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn table1_stdout_is_bit_identical_across_warm_modes() {
    let bin = env!("CARGO_BIN_EXE_table1");
    let cold = scrub_table1(&run_table(bin, "0"));
    let warm = scrub_table1(&run_table(bin, "1"));
    assert_eq!(
        cold, warm,
        "table1 deterministic cells moved when warm starts were forced on"
    );
}
