//! Sigma→0 differential property over the three flows.
//!
//! With every sigma at zero the statistical delay mode carries no
//! randomness: each canonical form is a point mass, the margined EDL
//! rule degenerates to the deterministic arrival rule, and every yield
//! is an exact `0`/`1` step. This proptest pins the strongest form of
//! that collapse on random levelized circuits: base retiming, RVL-RAR,
//! and G-RAR must each produce **bit-identical** outcomes (cut, EDL
//! flags, sequential breakdown, nominal timing, total area) under
//! `Statistical(σ = 0)` and plain `GateBased`, at every thread count
//! the parallel flows accept. Weaker fixed-circuit versions live next
//! to each flow; this one owns the random-instance sweep.

use proptest::prelude::*;
use retime_circuits::SynthConfig;
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::CombCloud;
use retime_retime::{base_retime, RetimeOutcome};
use retime_sta::{DelayModel, StatParams, TimingAnalysis, TwoPhaseClock};
use retime_vl::{vl_retime, VlConfig, VlVariant};

/// The calibration scheme of the suite: the period that puts the
/// gate-based critical path at 70% utilization, guaranteed feasible.
fn feasible_clock(cloud: &CombCloud, lib: &Library) -> TwoPhaseClock {
    let sta = TimingAnalysis::new(
        cloud,
        lib,
        TwoPhaseClock::from_max_delay(1.0),
        DelayModel::GateBased,
    )
    .expect("probe sta builds");
    let crit = cloud
        .sinks()
        .iter()
        .map(|&t| sta.df(t))
        .fold(0.0f64, f64::max);
    let latch = lib.latch();
    TwoPhaseClock::from_max_delay((crit + latch.d_to_q + latch.clk_to_q) / 0.7)
}

/// Bit-level agreement between a gate-based outcome and a σ=0
/// statistical one, plus the statistical side's degenerate summary.
fn assert_collapsed(det: &RetimeOutcome, stat: &RetimeOutcome, what: &str) {
    assert_eq!(det.cut, stat.cut, "{what}: cut moved");
    assert_eq!(det.ed_sinks, stat.ed_sinks, "{what}: EDL flags moved");
    assert_eq!(det.seq, stat.seq, "{what}: sequential breakdown moved");
    assert_eq!(det.timing, stat.timing, "{what}: nominal timing moved");
    assert_eq!(
        det.total_area.to_bits(),
        stat.total_area.to_bits(),
        "{what}: total area moved"
    );
    assert!(det.stat.is_none(), "{what}: deterministic summary present");
    let summary = stat
        .stat
        .as_ref()
        .unwrap_or_else(|| panic!("{what}: statistical run dropped its summary"));
    for (i, &y) in summary.yields.iter().enumerate() {
        assert!(
            y == 0.0 || y == 1.0,
            "{what}: sink {i} yield {y} is not a step at sigma zero"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sigma_zero_collapses_onto_gate_based_across_flows_and_threads(
        flops in 4usize..10,
        gates in 24usize..64,
        inputs in 2usize..6,
        outputs in 1usize..4,
        levels in 6usize..10,
        deep_sinks in 0usize..3,
        seed in any::<u64>(),
    ) {
        let netlist = SynthConfig {
            name: "prop".to_string(),
            flops,
            gates,
            inputs,
            outputs,
            levels,
            deep_sinks,
            hard_sinks: deep_sinks.min(1),
            seed,
        }
        .generate()
        .expect("synthetic circuit builds");
        let cloud = CombCloud::extract(&netlist).expect("cloud extracts");
        let lib = Library::fdsoi28();
        let clock = feasible_clock(&cloud, &lib);
        let det = DelayModel::GateBased;
        let zero = DelayModel::Statistical(StatParams::new(0.0, 0.0, 0.9987, seed ^ 1));
        let c = EdlOverhead::MEDIUM;

        let base_det = base_retime(&cloud, &lib, clock, det, c).expect("base det");
        let base_stat = base_retime(&cloud, &lib, clock, zero, c).expect("base stat");
        assert_collapsed(&base_det, &base_stat, "base");

        for threads in [1usize, 4] {
            let what = format!("rvl@{threads}");
            let rvl_det = vl_retime(
                &cloud,
                &lib,
                clock,
                &VlConfig::new(VlVariant::Rvl, c).with_model(det).with_threads(threads),
            )
            .expect("rvl det");
            let rvl_stat = vl_retime(
                &cloud,
                &lib,
                clock,
                &VlConfig::new(VlVariant::Rvl, c).with_model(zero).with_threads(threads),
            )
            .expect("rvl stat");
            assert_collapsed(&rvl_det.outcome, &rvl_stat.outcome, &what);

            let what = format!("grar@{threads}");
            let g_det = grar(
                &cloud,
                &lib,
                clock,
                &GrarConfig::new(c).with_model(det).with_threads(threads),
            )
            .expect("grar det");
            let g_stat = grar(
                &cloud,
                &lib,
                clock,
                &GrarConfig::new(c).with_model(zero).with_threads(threads),
            )
            .expect("grar stat");
            assert_collapsed(&g_det.outcome, &g_stat.outcome, &what);
            prop_assert_eq!(&g_det.targets, &g_stat.targets, "{}: targets", &what);
            prop_assert_eq!(&g_det.always_ed, &g_stat.always_ed, "{}: always_ed", &what);
            prop_assert_eq!(&g_det.never_ed, &g_stat.never_ed, "{}: never_ed", &what);
        }
    }
}
