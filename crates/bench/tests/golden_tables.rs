//! Golden snapshot tests for the table binaries.
//!
//! The `table1` / `table4` row logic runs on the tiny suite (the four
//! smallest circuits) and is compared cell-for-cell against checked-in
//! expected rows, so a table-output regression fails `cargo test`
//! instead of only being caught by the CI smoke run.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p retime-bench --test golden_tables
//! ```

use std::path::PathBuf;

use retime_bench::{build_case, map_cases, table1_row, table4_row, table4_stat_row, BenchCase};
use retime_circuits::paper_suite;
use retime_liberty::{EdlOverhead, Library};
use retime_retime::AreaModel;
use retime_sta::{DelayModel, StatParams};

/// The tiny suite, built directly (not via `RETIME_SUITE`, which other
/// concurrently running tests may set).
fn tiny_cases(lib: &Library) -> Vec<BenchCase> {
    paper_suite()
        .into_iter()
        .take(4)
        .map(|spec| build_case(&spec, lib))
        .collect()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares rows against the golden file (cells joined with `" | "`), or
/// rewrites it when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, rows: &[Vec<String>]) {
    let rendered: String = rows
        .iter()
        .map(|row| row.join(" | "))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "{name} drifted from its golden snapshot; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn table1_rows_match_golden() {
    let lib = Library::fdsoi28();
    let cases = tiny_cases(&lib);
    let model = AreaModel::new(&lib, EdlOverhead::MEDIUM);
    let rows = map_cases(&cases, |case| table1_row(case, &lib, &model));
    check_golden("table1_tiny.txt", &rows);
}

#[test]
fn table4_rows_match_golden() {
    let lib = Library::fdsoi28();
    let cases = tiny_cases(&lib);
    let rows: Vec<Vec<String>> = map_cases(&cases, |case| table4_row(case, &lib))
        .into_iter()
        .map(|(row, _, _)| row)
        .collect();
    check_golden("table4_tiny.txt", &rows);
}

/// The statistical Table IV section on the tiny suite, pinned under the
/// default statistical parameters (not `RETIME_DELAY_MODE`, which other
/// concurrently running tests could perturb). The row includes the
/// yield, EDL-count, and jitter-sensitivity columns, so any drift in
/// the canonical-form engine's numerics fails here first.
#[test]
fn table4_stat_rows_match_golden() {
    let lib = Library::fdsoi28();
    let cases = tiny_cases(&lib);
    let model = DelayModel::Statistical(StatParams::DEFAULT);
    let rows = map_cases(&cases, |case| table4_stat_row(case, &lib, model));
    check_golden("table4_stat_tiny.txt", &rows);
}
