//! Ablation studies called out in DESIGN.md:
//!
//! * pseudo nodes on/off (the resiliency-aware coupling itself),
//! * delay model gate-based vs path-based (Table II's mechanism),
//! * fanout-sharing mirror nodes on/off is structural and is exercised by
//!   comparing the breadth-aware objective against plain latch counting,
//! * sequential vs parallel backward/cut-set fan-out (the flow-engine
//!   `parallel_map` classification stage).
//!
//! `--json` runs each variant once under a wall clock and writes the
//! per-variant milliseconds to `BENCH_ablation.json` instead of the
//! criterion sampling loop.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use retime_circuits::small_suite;
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_retime::base_retime;
use retime_sta::DelayModel;

fn setup() -> (
    retime_circuits::SuiteCircuit,
    Library,
    retime_sta::TwoPhaseClock,
) {
    let lib = Library::fdsoi28();
    let spec = small_suite()
        .into_iter()
        .find(|s| s.name == "s1423")
        .expect("s1423 in suite");
    let circuit = spec.build().expect("builds");
    let clock = circuit
        .calibrated_clock(&lib, DelayModel::PathBased)
        .expect("calibrates");
    (circuit, lib, clock)
}

fn bench_ablation(c: &mut Criterion) {
    let (circuit, lib, clock) = setup();
    let mut group = c.benchmark_group("ablation_s1423");
    group.sample_size(10);
    group.bench_function("grar_with_pseudo_nodes", |b| {
        b.iter(|| {
            grar(
                &circuit.cloud,
                &lib,
                clock,
                &GrarConfig::new(EdlOverhead::HIGH),
            )
            .expect("grar")
        })
    });
    group.bench_function("retime_without_pseudo_nodes", |b| {
        b.iter(|| {
            base_retime(
                &circuit.cloud,
                &lib,
                clock,
                DelayModel::PathBased,
                EdlOverhead::HIGH,
            )
            .expect("base")
        })
    });
    group.bench_function("grar_gate_based_delay", |b| {
        b.iter(|| {
            grar(
                &circuit.cloud,
                &lib,
                clock,
                &GrarConfig::new(EdlOverhead::HIGH).with_model(DelayModel::GateBased),
            )
            .expect("grar")
        })
    });
    group.bench_function("grar_sequential_backward", |b| {
        b.iter(|| {
            grar(
                &circuit.cloud,
                &lib,
                clock,
                &GrarConfig::new(EdlOverhead::HIGH).with_threads(1),
            )
            .expect("grar")
        })
    });
    group.bench_function("grar_parallel_backward", |b| {
        b.iter(|| {
            grar(
                &circuit.cloud,
                &lib,
                clock,
                &GrarConfig::new(EdlOverhead::HIGH).with_threads(0),
            )
            .expect("grar")
        })
    });
    group.finish();
}

type Variant<'a> = (&'a str, Box<dyn Fn() + 'a>);

/// One warmed, wall-clocked run per variant, written to
/// `BENCH_ablation.json`.
fn run_json() {
    let (circuit, lib, clock) = setup();
    let variants: Vec<Variant<'_>> = vec![
        (
            "grar_with_pseudo_nodes",
            Box::new(|| {
                grar(
                    &circuit.cloud,
                    &lib,
                    clock,
                    &GrarConfig::new(EdlOverhead::HIGH),
                )
                .map(|_| ())
                .expect("grar")
            }),
        ),
        (
            "retime_without_pseudo_nodes",
            Box::new(|| {
                base_retime(
                    &circuit.cloud,
                    &lib,
                    clock,
                    DelayModel::PathBased,
                    EdlOverhead::HIGH,
                )
                .map(|_| ())
                .expect("base")
            }),
        ),
        (
            "grar_gate_based_delay",
            Box::new(|| {
                grar(
                    &circuit.cloud,
                    &lib,
                    clock,
                    &GrarConfig::new(EdlOverhead::HIGH).with_model(DelayModel::GateBased),
                )
                .map(|_| ())
                .expect("grar")
            }),
        ),
    ];
    let mut cells = Vec::new();
    for (name, run) in &variants {
        run();
        let t0 = Instant::now();
        run();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        cells.push(format!("  \"{name}_ms\": {ms:.3}"));
    }
    let json = format!("{{\n  \"circuit\": \"s1423\",\n{}\n}}\n", cells.join(",\n"));
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ablation.json");
    std::fs::write(&out, &json).expect("writes json");
    print!("{json}");
}

criterion_group!(benches, bench_ablation);

fn main() {
    if std::env::args().any(|a| a == "--json") {
        run_json();
    } else {
        benches();
    }
}
