//! Ablation studies called out in DESIGN.md:
//!
//! * pseudo nodes on/off (the resiliency-aware coupling itself),
//! * delay model gate-based vs path-based (Table II's mechanism),
//! * fanout-sharing mirror nodes on/off is structural and is exercised by
//!   comparing the breadth-aware objective against plain latch counting,
//! * sequential vs parallel backward/cut-set fan-out (the flow-engine
//!   `parallel_map` classification stage).

use criterion::{criterion_group, criterion_main, Criterion};
use retime_circuits::small_suite;
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_retime::base_retime;
use retime_sta::DelayModel;

fn bench_ablation(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let spec = small_suite()
        .into_iter()
        .find(|s| s.name == "s1423")
        .expect("s1423 in suite");
    let circuit = spec.build().expect("builds");
    let clock = circuit
        .calibrated_clock(&lib, DelayModel::PathBased)
        .expect("calibrates");
    let mut group = c.benchmark_group("ablation_s1423");
    group.sample_size(10);
    group.bench_function("grar_with_pseudo_nodes", |b| {
        b.iter(|| {
            grar(
                &circuit.cloud,
                &lib,
                clock,
                &GrarConfig::new(EdlOverhead::HIGH),
            )
            .expect("grar")
        })
    });
    group.bench_function("retime_without_pseudo_nodes", |b| {
        b.iter(|| {
            base_retime(
                &circuit.cloud,
                &lib,
                clock,
                DelayModel::PathBased,
                EdlOverhead::HIGH,
            )
            .expect("base")
        })
    });
    group.bench_function("grar_gate_based_delay", |b| {
        b.iter(|| {
            grar(
                &circuit.cloud,
                &lib,
                clock,
                &GrarConfig::new(EdlOverhead::HIGH).with_model(DelayModel::GateBased),
            )
            .expect("grar")
        })
    });
    group.bench_function("grar_sequential_backward", |b| {
        b.iter(|| {
            grar(
                &circuit.cloud,
                &lib,
                clock,
                &GrarConfig::new(EdlOverhead::HIGH).with_threads(1),
            )
            .expect("grar")
        })
    });
    group.bench_function("grar_parallel_backward", |b| {
        b.iter(|| {
            grar(
                &circuit.cloud,
                &lib,
                clock,
                &GrarConfig::new(EdlOverhead::HIGH).with_threads(0),
            )
            .expect("grar")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
