//! Conversion front-door throughput: EDIF write → parse → two-phase
//! conversion on suite circuits.
//!
//! Modes:
//!
//! * default — criterion group on s1423 (fast, CI-smoke friendly);
//! * `--json [circuit]` — best-of-3 timed breakdown on `circuit`
//!   (default s35932, the largest suite circuit), written to
//!   `BENCH_convert.json` in the repository root.
//!
//! The JSON path also reports parser throughput in MiB/s over the
//! circuit's EDIF text, since the interned-atom reader is the piece the
//! front door adds on top of the existing `.bench` path.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use retime_circuits::paper_suite;
use retime_convert::{convert, edif, ConvertConfig};
use retime_liberty::Library;
use retime_netlist::Netlist;

fn suite_netlist(name: &str) -> Netlist {
    paper_suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} not in suite"))
        .build()
        .expect("builds")
        .netlist
}

/// One timed pass: returns (write, parse, convert) durations.
fn one_pass(src: &Netlist, text: &str, lib: &Library) -> (Duration, Duration, Duration) {
    let t0 = Instant::now();
    let written = edif::write(src);
    let write_t = t0.elapsed();
    assert_eq!(written.len(), text.len(), "writer is deterministic");

    let t0 = Instant::now();
    let parsed = edif::parse(text).expect("suite EDIF parses");
    let parse_t = t0.elapsed();

    let cfg = ConvertConfig {
        check: false, // the proof is covered by tests; this times the pass
        ..ConvertConfig::default()
    };
    let t0 = Instant::now();
    let conv = convert(&parsed, lib, &cfg).expect("suite circuit converts");
    let convert_t = t0.elapsed();
    assert_eq!(conv.netlist.stats().dffs, 0);

    (write_t, parse_t, convert_t)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-3 breakdown written to `BENCH_convert.json`.
fn run_json(circuit: &str) {
    let lib = Library::fdsoi28();
    let src = suite_netlist(circuit);
    let text = edif::write(&src);
    let stats = src.stats();
    let (mut write_best, mut parse_best, mut convert_best) =
        (Duration::MAX, Duration::MAX, Duration::MAX);
    for _ in 0..3 {
        let (w, p, c) = one_pass(&src, &text, &lib);
        write_best = write_best.min(w);
        parse_best = parse_best.min(p);
        convert_best = convert_best.min(c);
    }
    let mib = text.len() as f64 / (1024.0 * 1024.0);
    let parse_mib_s = mib / parse_best.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"circuit\": \"{}\",\n  \"gates\": {},\n  \"flops\": {},\n  \
         \"edif_bytes\": {},\n  \"write_ms\": {:.3},\n  \"parse_ms\": {:.3},\n  \
         \"parse_mib_per_s\": {:.1},\n  \"convert_ms\": {:.3},\n  \"total_ms\": {:.3}\n}}\n",
        circuit,
        stats.gates,
        stats.dffs,
        text.len(),
        ms(write_best),
        ms(parse_best),
        parse_mib_s,
        ms(convert_best),
        ms(write_best) + ms(parse_best) + ms(convert_best),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_convert.json");
    std::fs::write(&out, &json).expect("writes json");
    print!("{json}");
}

fn bench_convert(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let src = suite_netlist("s1423");
    let text = edif::write(&src);
    let mut group = c.benchmark_group("convert_s1423");
    group.sample_size(20);
    group.bench_function("edif_parse", |b| {
        b.iter(|| edif::parse(&text).expect("parses"))
    });
    group.bench_function("edif_write_parse_convert", |b| {
        b.iter(|| one_pass(&src, &text, &lib))
    });
    group.finish();
}

criterion_group!(benches, bench_convert);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let circuit = match args.get(pos + 1) {
            Some(name) if !name.starts_with('-') => name.clone(),
            _ => "s35932".to_string(),
        };
        run_json(&circuit);
    } else {
        benches();
    }
}
