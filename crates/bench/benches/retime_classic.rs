//! Classic (resiliency-unaware) min-area retiming throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retime_circuits::small_suite;
use retime_liberty::{EdlOverhead, Library};
use retime_retime::base_retime;
use retime_sta::DelayModel;

fn bench_base(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let mut group = c.benchmark_group("base_retime");
    group.sample_size(10);
    for spec in small_suite().into_iter().take(3) {
        let circuit = spec.build().expect("builds");
        let clock = circuit
            .calibrated_clock(&lib, DelayModel::PathBased)
            .expect("calibrates");
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    base_retime(
                        &circuit.cloud,
                        &lib,
                        clock,
                        DelayModel::PathBased,
                        EdlOverhead::MEDIUM,
                    )
                    .expect("base")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_base);
criterion_main!(benches);
