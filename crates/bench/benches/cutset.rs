//! g(t) cut-set construction cost per target master.

use criterion::{criterion_group, criterion_main, Criterion};
use retime_circuits::small_suite;
use retime_core::classify_and_cut_set;
use retime_liberty::Library;
use retime_sta::{DelayModel, TimingAnalysis};

fn bench_cutset(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let spec = small_suite().into_iter().last().expect("non-empty");
    let circuit = spec.build().expect("builds");
    let clock = circuit
        .calibrated_clock(&lib, DelayModel::PathBased)
        .expect("calibrates");
    let sta = TimingAnalysis::new(&circuit.cloud, &lib, clock, DelayModel::PathBased).expect("sta");
    let sinks: Vec<_> = circuit.cloud.sinks().to_vec();
    let mut g = c.benchmark_group("cutset");
    g.sample_size(10);
    g.bench_function("classify_and_cut_set_all_sinks", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &t in &sinks {
                let bp = sta.backward(t);
                let (_, g) = classify_and_cut_set(&sta, &bp);
                total += g.len();
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cutset);
criterion_main!(benches);
