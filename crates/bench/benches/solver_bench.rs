//! Cold-solve cost of the CSR network-simplex core across pivot rules.
//!
//! Every measurement is a *cold* solve: a fresh [`MinCostFlow`] is taken
//! from [`RetimingProblem::flow_instance`] each round, so the timing
//! includes the CSR arena freeze — the number a user pays on a first
//! solve, not a cache-warm re-probe.
//!
//! `--json` compares the three pivot rules on three suite circuits of
//! increasing size (s1423, s13207, s35932), measures the s35932
//! cold-solve wall clock of the new engine against the kept-verbatim
//! pre-refactor simplex (Dantzig pricing, full tree rebuild per pivot),
//! writes `BENCH_solver.json`, and asserts the refactor is actually
//! faster (speedup > 1). Every objective is cross-checked across rules
//! and against the primal-dual SSP on the way. The criterion path
//! samples the same rules on s1423 so an interactive `cargo bench`
//! stays quick.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use retime_circuits::paper_suite;
use retime_flow::{MinCostFlow, PivotRuleKind};
use retime_liberty::Library;
use retime_retime::{Regions, RetimingProblem};
use retime_sta::{DelayModel, TimingAnalysis};

/// Rounds per measurement in `--json` mode (min is reported).
const ROUNDS: usize = 3;

/// The concrete pivot rules, with the names used in the JSON keys.
const RULES: [(&str, PivotRuleKind); 3] = [
    ("first", PivotRuleKind::FirstEligible),
    ("block", PivotRuleKind::BlockSearch),
    ("candidates", PivotRuleKind::CandidateList),
];

/// Builds the Eq. 14 min-area retiming problem for a suite circuit.
fn build_problem(name: &str) -> RetimingProblem {
    let lib = Library::fdsoi28();
    let spec = paper_suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} in suite"));
    let circuit = spec.build().expect("builds");
    let clock = circuit
        .calibrated_clock(&lib, DelayModel::PathBased)
        .expect("calibrates");
    let sta = TimingAnalysis::new(&circuit.cloud, &lib, clock, DelayModel::PathBased).expect("sta");
    let regions = Regions::compute(&sta).expect("regions");
    RetimingProblem::build(&circuit.cloud, &regions)
}

/// Minimum wall clock of `f` over `rounds` runs, in milliseconds.
fn time_min_ms<R>(rounds: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One cold simplex solve: fresh instance (empty `OnceLock`, so the CSR
/// freeze is inside the timed region), one pivot rule.
fn cold_solve(problem: &RetimingProblem, rule: PivotRuleKind) -> i64 {
    let flow: MinCostFlow = problem.flow_instance();
    flow.solve_network_simplex_with(rule).expect("solves").cost
}

fn bench_pivot_rules(c: &mut Criterion) {
    let problem = build_problem("s1423");
    let mut group = c.benchmark_group("simplex_cold_solve_s1423");
    group.sample_size(10);
    for (name, rule) in RULES {
        group.bench_function(name, |b| b.iter(|| cold_solve(&problem, rule)));
    }
    group.bench_function("prerefactor", |b| {
        b.iter(|| {
            problem
                .flow_instance()
                .solve_network_simplex_prerefactor()
                .expect("solves")
                .cost
        })
    });
    group.finish();
}

/// Cold-solve comparison written to `BENCH_solver.json`; panics if any
/// rule disagrees on the objective or the refactor fails to beat the
/// pre-refactor baseline on s35932.
fn run_json() {
    let mut circuit_entries = Vec::new();
    let mut s35932_auto = f64::NAN;
    for circuit in ["s1423", "s13207", "s35932"] {
        let problem = build_problem(circuit);
        let probe = problem.flow_instance();
        let (nodes, arcs) = (probe.node_count(), probe.arc_count());
        let expected = probe.solve().expect("SSP solves").cost;

        let mut fields = String::new();
        for (name, rule) in RULES {
            let cost = cold_solve(&problem, rule);
            assert_eq!(cost, expected, "{circuit}: {name} disagrees with SSP");
            let ms = time_min_ms(ROUNDS, || cold_solve(&problem, rule));
            fields.push_str(&format!("\"{name}_ms\": {ms:.3}, "));
        }
        // The production entry point (auto selection / `RETIME_PIVOT`).
        let auto_ms = time_min_ms(ROUNDS, || {
            problem
                .flow_instance()
                .solve_network_simplex()
                .expect("solves")
                .cost
        });
        if circuit == "s35932" {
            s35932_auto = auto_ms;
        }
        circuit_entries.push(format!(
            "    {{\"circuit\": \"{circuit}\", \"nodes\": {nodes}, \"arcs\": {arcs}, \
             {fields}\"auto_ms\": {auto_ms:.3}, \"cost\": {expected}}}"
        ));
        eprintln!("{circuit}: measured ({nodes} nodes, {arcs} arcs)");
    }

    // Pre-refactor baseline on the stress case, same cold protocol.
    let problem = build_problem("s35932");
    let expected = problem.flow_instance().solve().expect("SSP solves").cost;
    let prerefactor_ms = time_min_ms(ROUNDS, || {
        let sol = problem
            .flow_instance()
            .solve_network_simplex_prerefactor()
            .expect("solves");
        assert_eq!(sol.cost, expected, "prerefactor disagrees with SSP");
        sol.cost
    });
    let speedup = prerefactor_ms / s35932_auto;

    let json = format!(
        "{{\n  \"rounds\": {ROUNDS},\n  \"circuits\": [\n{}\n  ],\n  \
         \"s35932_cold_ms\": {s35932_auto:.3},\n  \
         \"s35932_prerefactor_ms\": {prerefactor_ms:.3},\n  \
         \"s35932_speedup\": {speedup:.3}\n}}\n",
        circuit_entries.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_solver.json");
    std::fs::write(&out, &json).expect("writes json");
    print!("{json}");
    assert!(
        speedup > 1.0,
        "CSR simplex ({s35932_auto:.3} ms) is not faster than the \
         pre-refactor engine ({prerefactor_ms:.3} ms) on s35932"
    );
}

criterion_group!(benches, bench_pivot_rules);

fn main() {
    if std::env::args().any(|a| a == "--json") {
        run_json();
    } else {
        benches();
    }
}
