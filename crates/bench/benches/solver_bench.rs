//! Cold-solve cost of the CSR network-simplex core across pivot rules,
//! plus the warm-start payoff of the parametric sweep layer.
//!
//! Cold measurements take a fresh [`MinCostFlow`] from
//! [`RetimingProblem::flow_instance`] each round, so the timing includes
//! the CSR arena freeze — the number a user pays on a first solve.
//! Warm measurements time **only the re-solves**: one
//! [`retime_retime::RetimingSweep`] is primed outside the timed region
//! and then driven through the probe schedule, never rebuilding the
//! instance — the number an overhead sweep or period search pays per
//! probe after the first.
//!
//! `--json` compares the three pivot rules on three suite circuits of
//! increasing size (s1423, s13207, s35932), measures the s35932
//! cold-solve wall clock of the new engine against the kept-verbatim
//! pre-refactor simplex (Dantzig pricing, full tree rebuild per pivot),
//! runs the c-sweep + period-search probe schedule warm vs cold, writes
//! `BENCH_solver.json`, and asserts both that the refactor is actually
//! faster (speedup > 1) and that the warm sweep lands under 40% of the
//! cold-per-probe total on s35932. Every objective is cross-checked
//! across rules, against the primal-dual SSP, and (for warm probes)
//! against an independent cold solve on the way. The criterion path
//! samples the same rules on s1423 so an interactive `cargo bench`
//! stays quick.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use retime_circuits::paper_suite;
use retime_flow::{MinCostFlow, PivotRuleKind, WarmMode};
use retime_liberty::Library;
use retime_netlist::CombCloud;
use retime_retime::{Regions, RetimingProblem, SolverEngine, BREADTH_SCALE};
use retime_sta::{DelayModel, TimingAnalysis, TwoPhaseClock};

/// Rounds per measurement in `--json` mode (min is reported).
const ROUNDS: usize = 3;

/// The concrete pivot rules, with the names used in the JSON keys.
const RULES: [(&str, PivotRuleKind); 3] = [
    ("first", PivotRuleKind::FirstEligible),
    ("block", PivotRuleKind::BlockSearch),
    ("candidates", PivotRuleKind::CandidateList),
];

/// A suite circuit's Eq. 14 min-area retiming problem plus everything
/// the warm-sweep rows need to derive probe states (the cloud for
/// pseudo targets, the calibrated clock for period re-binds).
struct ProblemSetup {
    problem: RetimingProblem,
    cloud: CombCloud,
    clock: TwoPhaseClock,
    lib: Library,
}

/// Builds the Eq. 14 min-area retiming problem for a suite circuit.
fn build_setup(name: &str) -> ProblemSetup {
    let lib = Library::fdsoi28();
    let spec = paper_suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} in suite"));
    let circuit = spec.build().expect("builds");
    let clock = circuit
        .calibrated_clock(&lib, DelayModel::PathBased)
        .expect("calibrates");
    let sta = TimingAnalysis::new(&circuit.cloud, &lib, clock, DelayModel::PathBased).expect("sta");
    let regions = Regions::compute(&sta).expect("regions");
    let problem = RetimingProblem::build(&circuit.cloud, &regions);
    ProblemSetup {
        problem,
        cloud: circuit.cloud,
        clock,
        lib,
    }
}

/// Minimum wall clock of `f` over `rounds` runs, in milliseconds.
fn time_min_ms<R>(rounds: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One cold simplex solve: fresh instance (empty `OnceLock`, so the CSR
/// freeze is inside the timed region), one pivot rule.
fn cold_solve(problem: &RetimingProblem, rule: PivotRuleKind) -> i64 {
    let flow: MinCostFlow = problem.flow_instance();
    flow.solve_network_simplex_with(rule).expect("solves").cost
}

/// The c-sweep + period-search probe schedule: three period re-binds
/// (cost-only changes, the shape of a binary period search) followed by
/// the `c / 2, c, 2c` EDL overhead re-pricings (demand-only changes).
/// Applies each mutation to `problem` and calls `solve` — six probes.
fn run_probe_schedule(
    problem: &mut RetimingProblem,
    pseudo: usize,
    periods: &[Regions],
    mut solve: impl FnMut(&RetimingProblem),
) {
    for regions in periods {
        problem.rebind_regions(regions);
        solve(problem);
    }
    for c_scaled in [BREADTH_SCALE / 2, BREADTH_SCALE, 2 * BREADTH_SCALE] {
        problem.set_pseudo_overhead(pseudo, c_scaled);
        solve(problem);
    }
}

/// Warm-vs-cold sweep measurement on one circuit. The problem gets a
/// resiliency pseudo target (so the overhead probes actually move
/// demands, exactly like G-RAR's `c` sweep) and period regions at
/// relaxed clocks; then the six-probe schedule is timed twice:
///
/// * **cold**: every probe pays a fresh `flow_instance()` build plus a
///   from-scratch simplex solve — the pre-warm-start per-probe cost;
/// * **warm**: a [`retime_retime::RetimingSweep`] is primed *outside*
///   the timed region and each probe only pays the basis repair
///   (simplex resume for cost probes, SSP delta-route for demand
///   probes) — never an instance rebuild.
///
/// Every warm probe is cross-checked against an independent cold solve
/// before any timing happens.
fn sweep_ms(setup: &mut ProblemSetup, circuit: &str) -> (f64, f64) {
    let gates: Vec<_> = setup.cloud.sinks().iter().take(2).copied().collect();
    let pseudo = setup.problem.add_pseudo_target(&gates, BREADTH_SCALE);
    let periods: Vec<Regions> = [1.5, 1.25, 1.1]
        .iter()
        .map(|scale| {
            let sta = TimingAnalysis::new(
                &setup.cloud,
                &setup.lib,
                TwoPhaseClock::from_max_delay(setup.clock.max_path_delay() * scale),
                DelayModel::PathBased,
            )
            .expect("probe sta");
            Regions::compute(&sta).expect("probe regions")
        })
        .collect();

    // Correctness gate: every warm probe must land on the cold optimum.
    let mut check = setup
        .problem
        .parametric_sweep_with(WarmMode::On, PivotRuleKind::Auto);
    run_probe_schedule(&mut setup.problem, pseudo, &periods, |p| {
        let warm = check.solve_for(p).expect("warm probe solves");
        let cold = p
            .solve(SolverEngine::NetworkSimplex)
            .expect("cold probe solves");
        assert_eq!(
            warm.objective_scaled, cold.objective_scaled,
            "{circuit}: warm probe diverged from cold"
        );
    });
    drop(check);

    let mut cold_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        run_probe_schedule(&mut setup.problem, pseudo, &periods, |p| {
            std::hint::black_box(
                p.flow_instance()
                    .solve_network_simplex()
                    .expect("solves")
                    .cost,
            );
        });
        cold_best = cold_best.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let mut warm_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let mut sweep = setup
            .problem
            .parametric_sweep_with(WarmMode::On, PivotRuleKind::Auto);
        // Prime the basis outside the timed region: warm rows measure
        // only the re-solves, never the instance build.
        sweep.solve_for(&setup.problem).expect("prime solves");
        let t0 = Instant::now();
        run_probe_schedule(&mut setup.problem, pseudo, &periods, |p| {
            std::hint::black_box(sweep.solve_for(p).expect("warm probe solves"));
        });
        warm_best = warm_best.min(t0.elapsed().as_secs_f64() * 1e3);
        let stats = sweep.stats();
        assert_eq!(
            stats.cold_solves, 1,
            "{circuit}: a timed probe fell back to a cold solve"
        );
    }
    (cold_best, warm_best)
}

fn bench_pivot_rules(c: &mut Criterion) {
    let problem = build_setup("s1423").problem;
    let mut group = c.benchmark_group("simplex_cold_solve_s1423");
    group.sample_size(10);
    for (name, rule) in RULES {
        group.bench_function(name, |b| b.iter(|| cold_solve(&problem, rule)));
    }
    group.bench_function("prerefactor", |b| {
        b.iter(|| {
            problem
                .flow_instance()
                .solve_network_simplex_prerefactor()
                .expect("solves")
                .cost
        })
    });
    group.finish();
}

/// Cold-solve comparison written to `BENCH_solver.json`; panics if any
/// rule disagrees on the objective or the refactor fails to beat the
/// pre-refactor baseline on s35932.
fn run_json() {
    let mut circuit_entries = Vec::new();
    let mut s35932_auto = f64::NAN;
    let mut s35932_sweep = (f64::NAN, f64::NAN);
    for circuit in ["s1423", "s13207", "s35932"] {
        let mut setup = build_setup(circuit);
        let problem = &setup.problem;
        let probe = problem.flow_instance();
        let (nodes, arcs) = (probe.node_count(), probe.arc_count());
        let expected = probe.solve().expect("SSP solves").cost;

        let mut fields = String::new();
        for (name, rule) in RULES {
            let cost = cold_solve(problem, rule);
            assert_eq!(cost, expected, "{circuit}: {name} disagrees with SSP");
            let ms = time_min_ms(ROUNDS, || cold_solve(problem, rule));
            fields.push_str(&format!("\"{name}_ms\": {ms:.3}, "));
        }
        // The production entry point (auto selection / `RETIME_PIVOT`).
        let auto_ms = time_min_ms(ROUNDS, || {
            problem
                .flow_instance()
                .solve_network_simplex()
                .expect("solves")
                .cost
        });
        if circuit == "s35932" {
            s35932_auto = auto_ms;
        }
        // Warm-start payoff on the c-sweep + period-search schedule
        // (mutates the problem, so it runs after the cold rows).
        let (cold_sweep_ms, warm_sweep_ms) = sweep_ms(&mut setup, circuit);
        let warm_speedup = cold_sweep_ms / warm_sweep_ms;
        if circuit == "s35932" {
            s35932_sweep = (cold_sweep_ms, warm_sweep_ms);
        }
        circuit_entries.push(format!(
            "    {{\"circuit\": \"{circuit}\", \"nodes\": {nodes}, \"arcs\": {arcs}, \
             {fields}\"auto_ms\": {auto_ms:.3}, \
             \"cold_sweep_ms\": {cold_sweep_ms:.3}, \
             \"warm_sweep_ms\": {warm_sweep_ms:.3}, \
             \"warm_speedup\": {warm_speedup:.3}, \"cost\": {expected}}}"
        ));
        eprintln!("{circuit}: measured ({nodes} nodes, {arcs} arcs)");
    }

    // Pre-refactor baseline on the stress case, same cold protocol.
    let problem = build_setup("s35932").problem;
    let expected = problem.flow_instance().solve().expect("SSP solves").cost;
    let prerefactor_ms = time_min_ms(ROUNDS, || {
        let sol = problem
            .flow_instance()
            .solve_network_simplex_prerefactor()
            .expect("solves");
        assert_eq!(sol.cost, expected, "prerefactor disagrees with SSP");
        sol.cost
    });
    let speedup = prerefactor_ms / s35932_auto;
    let (s35932_cold_sweep, s35932_warm_sweep) = s35932_sweep;
    let warm_ratio = s35932_warm_sweep / s35932_cold_sweep;

    let json = format!(
        "{{\n  \"rounds\": {ROUNDS},\n  \"circuits\": [\n{}\n  ],\n  \
         \"s35932_cold_ms\": {s35932_auto:.3},\n  \
         \"s35932_prerefactor_ms\": {prerefactor_ms:.3},\n  \
         \"s35932_speedup\": {speedup:.3},\n  \
         \"s35932_cold_sweep_ms\": {s35932_cold_sweep:.3},\n  \
         \"s35932_warm_sweep_ms\": {s35932_warm_sweep:.3},\n  \
         \"s35932_warm_ratio\": {warm_ratio:.3}\n}}\n",
        circuit_entries.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_solver.json");
    std::fs::write(&out, &json).expect("writes json");
    print!("{json}");
    assert!(
        speedup > 1.0,
        "CSR simplex ({s35932_auto:.3} ms) is not faster than the \
         pre-refactor engine ({prerefactor_ms:.3} ms) on s35932"
    );
    assert!(
        warm_ratio < 0.4,
        "warm c-sweep + period search on s35932 ({s35932_warm_sweep:.3} ms) \
         is not under 40% of the cold-per-probe total ({s35932_cold_sweep:.3} ms)"
    );
}

criterion_group!(benches, bench_pivot_rules);

fn main() {
    if std::env::args().any(|a| a == "--json") {
        run_json();
    } else {
        benches();
    }
}
