//! Overhead of the `retime-trace` layer on an end-to-end G-RAR run.
//!
//! Three variants, identical work:
//!
//! * `disabled` — spans compiled in but tracing off (the default state;
//!   each span site costs one relaxed atomic load),
//! * `enabled` — span recording on, records drained after every run,
//! * `export` — recording on plus the Chrome-trace JSON render.
//!
//! `--json` runs the variants interleaved on **s35932** (the largest
//! suite circuit, the paper's stress case), takes the min-of-N
//! wall-clock per variant, writes `BENCH_trace.json`, and asserts the
//! disabled-mode overhead stays under 2% by comparing two disabled
//! measurement series taken at different points of every round. The
//! criterion path samples the same variants on s1423 so an interactive
//! `cargo bench` stays quick.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use retime_circuits::paper_suite;
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_sta::DelayModel;

/// Rounds of the interleaved `--json` measurement (min is reported).
const ROUNDS: usize = 3;
/// Acceptance bound on the disabled-mode overhead, in percent.
const MAX_DISABLED_OVERHEAD_PCT: f64 = 2.0;

fn setup(
    name: &str,
) -> (
    retime_circuits::SuiteCircuit,
    Library,
    retime_sta::TwoPhaseClock,
) {
    let lib = Library::fdsoi28();
    let spec = paper_suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} in suite"));
    let circuit = spec.build().expect("builds");
    let clock = circuit
        .calibrated_clock(&lib, DelayModel::PathBased)
        .expect("calibrates");
    (circuit, lib, clock)
}

fn run_grar(
    circuit: &retime_circuits::SuiteCircuit,
    lib: &Library,
    clock: retime_sta::TwoPhaseClock,
) {
    grar(
        &circuit.cloud,
        lib,
        clock,
        &GrarConfig::new(EdlOverhead::HIGH),
    )
    .expect("grar");
}

fn bench_trace_overhead(c: &mut Criterion) {
    let (circuit, lib, clock) = setup("s1423");
    let mut group = c.benchmark_group("trace_overhead_s1423");
    group.sample_size(10);
    group.bench_function("grar_trace_disabled", |b| {
        b.iter(|| run_grar(&circuit, &lib, clock))
    });
    group.bench_function("grar_trace_enabled", |b| {
        b.iter(|| {
            retime_trace::set_enabled(true);
            run_grar(&circuit, &lib, clock);
            retime_trace::set_enabled(false);
            retime_trace::take_records()
        })
    });
    group.bench_function("grar_trace_export", |b| {
        b.iter(|| {
            retime_trace::set_enabled(true);
            run_grar(&circuit, &lib, clock);
            retime_trace::set_enabled(false);
            retime_trace::chrome_trace(&retime_trace::take_records())
        })
    });
    group.finish();
}

/// Interleaved min-of-N wall-clock on s35932, written to
/// `BENCH_trace.json`; panics if the disabled-mode overhead bound fails.
fn run_json() {
    let (circuit, lib, clock) = setup("s35932");
    run_grar(&circuit, &lib, clock); // warm-up

    let mut disabled = f64::INFINITY;
    let mut enabled = f64::INFINITY;
    let mut export = f64::INFINITY;
    let mut disabled_check = f64::INFINITY;
    let mut spans = 0usize;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        run_grar(&circuit, &lib, clock);
        disabled = disabled.min(t0.elapsed().as_secs_f64() * 1e3);

        retime_trace::set_enabled(true);
        let t0 = Instant::now();
        run_grar(&circuit, &lib, clock);
        enabled = enabled.min(t0.elapsed().as_secs_f64() * 1e3);
        retime_trace::set_enabled(false);
        spans = retime_trace::take_records().len();

        retime_trace::set_enabled(true);
        let t0 = Instant::now();
        run_grar(&circuit, &lib, clock);
        retime_trace::set_enabled(false);
        let text = retime_trace::chrome_trace(&retime_trace::take_records());
        export = export.min(t0.elapsed().as_secs_f64() * 1e3);
        retime_trace::check_chrome_trace(&text).expect("exported trace validates");

        let t0 = Instant::now();
        run_grar(&circuit, &lib, clock);
        disabled_check = disabled_check.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    // Two independent disabled series bracket every traced run; if the
    // trace layer leaked cost into the disabled path (or the machine
    // drifted beyond the bound) the later series would come out slower.
    let overhead_pct = (disabled_check - disabled) / disabled * 100.0;
    let json = format!(
        "{{\n  \"circuit\": \"s35932\",\n  \"disabled_ms\": {disabled:.3},\n  \
         \"enabled_ms\": {enabled:.3},\n  \"export_ms\": {export:.3},\n  \
         \"disabled_check_ms\": {disabled_check:.3},\n  \
         \"disabled_overhead_pct\": {overhead_pct:.3},\n  \"spans\": {spans}\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_trace.json");
    std::fs::write(&out, &json).expect("writes json");
    print!("{json}");
    assert!(
        overhead_pct < MAX_DISABLED_OVERHEAD_PCT,
        "disabled-mode tracing overhead {overhead_pct:.2}% exceeds \
         {MAX_DISABLED_OVERHEAD_PCT}%"
    );
}

criterion_group!(benches, bench_trace_overhead);

fn main() {
    if std::env::args().any(|a| a == "--json") {
        run_json();
    } else {
        benches();
    }
}
