//! Forward/backward STA pass scaling (the paper observes the backward
//! delay computation dominates G-RAR's run-time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retime_circuits::SynthConfig;
use retime_liberty::Library;
use retime_netlist::CombCloud;
use retime_sta::{DelayModel, TimingAnalysis, TwoPhaseClock};

fn cloud(gates: usize) -> CombCloud {
    let n = SynthConfig {
        name: format!("sta{gates}"),
        flops: gates / 8,
        gates,
        inputs: 10,
        outputs: 6,
        levels: 24,
        deep_sinks: gates / 40,
        hard_sinks: 2,
        seed: 7,
    }
    .generate()
    .expect("generates");
    CombCloud::extract(&n).expect("extracts")
}

fn bench_sta(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let mut group = c.benchmark_group("sta");
    group.sample_size(10);
    for gates in [200usize, 800, 3200] {
        let cl = cloud(gates);
        group.bench_with_input(BenchmarkId::new("forward_full", gates), &cl, |b, cl| {
            b.iter(|| {
                TimingAnalysis::new(
                    cl,
                    &lib,
                    TwoPhaseClock::from_max_delay(1.0),
                    DelayModel::PathBased,
                )
                .expect("sta")
            })
        });
        let sta = TimingAnalysis::new(
            &cl,
            &lib,
            TwoPhaseClock::from_max_delay(1.0),
            DelayModel::PathBased,
        )
        .expect("sta");
        let t = cl.sinks()[0];
        group.bench_with_input(BenchmarkId::new("backward_one_sink", gates), &t, |b, &t| {
            b.iter(|| sta.backward(t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sta);
criterion_main!(benches);
