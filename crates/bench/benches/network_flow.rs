//! Scaling of the three solver engines on retiming instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retime_circuits::SynthConfig;
use retime_liberty::Library;
use retime_netlist::CombCloud;
use retime_retime::{Regions, RetimingProblem, SolverEngine};
use retime_sta::{DelayModel, TimingAnalysis, TwoPhaseClock};

fn instance(gates: usize) -> (CombCloud, RetimingProblem) {
    let n = SynthConfig {
        name: format!("nf{gates}"),
        flops: gates / 8,
        gates,
        inputs: 10,
        outputs: 6,
        levels: 20,
        deep_sinks: gates / 40,
        hard_sinks: 0,
        seed: 99,
    }
    .generate()
    .expect("generates");
    let cloud = CombCloud::extract(&n).expect("extracts");
    let lib = Library::fdsoi28();
    let sta = TimingAnalysis::new(
        &cloud,
        &lib,
        TwoPhaseClock::from_max_delay(10.0),
        DelayModel::PathBased,
    )
    .expect("sta");
    let regions = Regions::compute(&sta).expect("regions");
    let problem = RetimingProblem::build(&cloud, &regions);
    (cloud, problem)
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("retiming_solvers");
    group.sample_size(10);
    for gates in [100usize, 400, 1600] {
        let (_cloud, problem) = instance(gates);
        for (name, engine) in [
            ("mincost_flow", SolverEngine::MinCostFlow),
            ("network_simplex", SolverEngine::NetworkSimplex),
            ("closure_mincut", SolverEngine::Closure),
        ] {
            group.bench_with_input(BenchmarkId::new(name, gates), &problem, |b, p| {
                b.iter(|| p.solve(engine).expect("solves"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
