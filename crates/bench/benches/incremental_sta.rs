//! Incremental STA vs full recompute.
//!
//! The workload mirrors multi-round legalization: each round upsizes a
//! batch of gates (scales their delay tables by `LEGALIZE_SPEEDUP`) and
//! re-queries the cut timing. The full path replays every round through
//! `TimingAnalysis::update_delays` + `cut_timing` (from-scratch arrival
//! propagation); the incremental path feeds the same edits to
//! `IncrementalTiming`, which repairs only the dirty fan-out cones.
//! Both paths must agree bit-for-bit — the bench asserts it.
//!
//! Modes:
//!
//! * default — criterion group on s1423 (fast, CI-smoke friendly);
//! * `--json [circuit]` — timed comparison on `circuit` (default
//!   s35932, the largest suite circuit), written to
//!   `BENCH_incremental_sta.json` in the working directory.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use retime_circuits::paper_suite;
use retime_liberty::Library;
use retime_netlist::{CombCloud, Cut, NodeId, NodeKind};
use retime_retime::LEGALIZE_SPEEDUP;
use retime_sta::{CutTiming, DelayModel, IncrementalTiming, TimingAnalysis, TwoPhaseClock};

const ROUNDS: usize = 6;
const GATES_PER_ROUND: usize = 8;

/// Deterministic per-round gate batches, spread across the netlist so
/// successive rounds dirty different fan-out cones.
fn round_targets(cloud: &CombCloud) -> Vec<Vec<NodeId>> {
    let gates: Vec<NodeId> = (0..cloud.len())
        .map(|i| NodeId(i as u32))
        .filter(|&v| matches!(cloud.node(v).kind, NodeKind::Gate { .. }))
        .collect();
    assert!(!gates.is_empty(), "suite circuits always have gates");
    let stride = (gates.len() / GATES_PER_ROUND).max(1);
    (0..ROUNDS)
        .map(|r| {
            (0..GATES_PER_ROUND)
                .map(|k| gates[(r * 131 + k * stride) % gates.len()])
                .collect()
        })
        .collect()
}

/// Runs the edit rounds through a fresh-propagation `TimingAnalysis`.
/// The analysis is constructed (and its initial arrivals computed)
/// before the clock starts, so only the per-round work is timed.
fn full_path(
    cloud: &CombCloud,
    lib: &Library,
    clock: TwoPhaseClock,
    rounds: &[Vec<NodeId>],
) -> (Duration, CutTiming) {
    let cut = Cut::initial(cloud);
    let mut sta =
        TimingAnalysis::new(cloud, lib, clock, DelayModel::PathBased).expect("sta builds");
    let _ = sta.cut_timing(&cut);
    let t0 = Instant::now();
    let mut last = None;
    for targets in rounds {
        sta.update_delays(|d| {
            for &g in targets {
                d.scale_node(g, LEGALIZE_SPEEDUP);
            }
        });
        last = Some(sta.cut_timing(&cut));
    }
    (t0.elapsed(), last.expect("at least one round"))
}

/// Runs the same edit rounds through the dirty-region engine. Returns
/// the elapsed time, the final timing, and how many node arrivals the
/// repairs re-evaluated.
fn incremental_path(
    cloud: &CombCloud,
    lib: &Library,
    clock: TwoPhaseClock,
    rounds: &[Vec<NodeId>],
) -> (Duration, CutTiming, u64) {
    let mut inc = IncrementalTiming::new(
        cloud,
        lib,
        clock,
        DelayModel::PathBased,
        Cut::initial(cloud),
    )
    .expect("engine builds");
    let _ = inc.cut_timing();
    let before = inc.stats();
    let t0 = Instant::now();
    let mut last = None;
    for targets in rounds {
        for &g in targets {
            inc.scale_node(g, LEGALIZE_SPEEDUP);
        }
        last = Some(inc.cut_timing());
    }
    let elapsed = t0.elapsed();
    let work = inc.stats().since(&before);
    (
        elapsed,
        last.expect("at least one round"),
        work.nodes_reevaluated,
    )
}

fn build(name: &str) -> (CombCloud, Library, TwoPhaseClock) {
    let lib = Library::fdsoi28();
    let spec = paper_suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} not in suite"));
    let circuit = spec.build().expect("builds");
    let clock = circuit
        .calibrated_clock(&lib, DelayModel::PathBased)
        .expect("calibrates");
    (circuit.cloud, lib, clock)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-3 timed comparison written to `BENCH_incremental_sta.json`.
fn run_json(circuit: &str) {
    let (cloud, lib, clock) = build(circuit);
    let rounds = round_targets(&cloud);
    let mut full_best = Duration::MAX;
    let mut inc_best = Duration::MAX;
    let mut reevaluated = 0;
    for _ in 0..3 {
        let (full_t, full_timing) = full_path(&cloud, &lib, clock, &rounds);
        let (inc_t, inc_timing, n) = incremental_path(&cloud, &lib, clock, &rounds);
        assert_eq!(
            inc_timing, full_timing,
            "incremental result diverged from full recompute"
        );
        full_best = full_best.min(full_t);
        inc_best = inc_best.min(inc_t);
        reevaluated = n;
    }
    let speedup = ms(full_best) / ms(inc_best).max(1e-9);
    let json = format!(
        "{{\n  \"circuit\": \"{}\",\n  \"nodes\": {},\n  \"rounds\": {},\n  \
         \"gates_per_round\": {},\n  \"full_ms\": {:.3},\n  \"incremental_ms\": {:.3},\n  \
         \"nodes_reevaluated\": {},\n  \"speedup\": {:.2}\n}}\n",
        circuit,
        cloud.len(),
        ROUNDS,
        GATES_PER_ROUND,
        ms(full_best),
        ms(inc_best),
        reevaluated,
        speedup
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_incremental_sta.json");
    std::fs::write(&out, &json).expect("writes json");
    print!("{json}");
}

fn bench_incremental_sta(c: &mut Criterion) {
    let (cloud, lib, clock) = build("s1423");
    let rounds = round_targets(&cloud);
    let mut group = c.benchmark_group("incremental_sta_s1423");
    group.sample_size(10);
    group.bench_function("full_recompute", |b| {
        b.iter(|| full_path(&cloud, &lib, clock, &rounds))
    });
    group.bench_function("incremental", |b| {
        b.iter(|| incremental_path(&cloud, &lib, clock, &rounds))
    });
    group.finish();
}

criterion_group!(benches, bench_incremental_sta);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let circuit = match args.get(pos + 1) {
            Some(name) if !name.starts_with('-') => name.clone(),
            _ => "s35932".to_string(),
        };
        run_json(&circuit);
    } else {
        benches();
    }
}
