//! End-to-end G-RAR throughput on suite-sized circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retime_circuits::small_suite;
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_sta::DelayModel;

fn bench_grar(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let mut group = c.benchmark_group("grar_end_to_end");
    group.sample_size(10);
    for spec in small_suite().into_iter().take(3) {
        let circuit = spec.build().expect("builds");
        let clock = circuit
            .calibrated_clock(&lib, DelayModel::PathBased)
            .expect("calibrates");
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    grar(
                        &circuit.cloud,
                        &lib,
                        clock,
                        &GrarConfig::new(EdlOverhead::HIGH),
                    )
                    .expect("grar")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grar);
criterion_main!(benches);
