//! Statistical-mode cost and fidelity: deterministic vs statistical
//! G-RAR runtime, and analytic-vs-Monte-Carlo yield agreement.
//!
//! Modes:
//!
//! * default — criterion group on s1423 (fast, CI-smoke friendly);
//! * `--json` — best-of-3 timed comparison on every tiny-suite circuit,
//!   written to `BENCH_stat.json` in the repository root. Per circuit:
//!   gate-based vs statistical G-RAR wall-clock (the canonical-form
//!   propagation's overhead over plain scalar STA), the worst analytic
//!   timing yield, and the maximum absolute gap between the analytic
//!   per-sink yields and an independent 4096-sample Monte Carlo
//!   (`retime-verify`'s estimator) — with a boolean verdict against the
//!   certificate tolerance.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use retime_bench::{build_case, BenchCase};
use retime_circuits::paper_suite;
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_sta::{DelayModel, StatParams};
use retime_verify::{mc_tolerance, mc_yields};

const MC_SAMPLES: usize = 4096;

fn stat_model() -> DelayModel {
    DelayModel::Statistical(StatParams::DEFAULT)
}

fn run_once(case: &BenchCase, lib: &Library, model: DelayModel) -> Duration {
    let t0 = Instant::now();
    let g = grar(
        &case.circuit.cloud,
        lib,
        case.clock,
        &GrarConfig::new(EdlOverhead::MEDIUM).with_model(model),
    )
    .expect("suite circuit retimes");
    assert!(g.outcome.total_area > 0.0);
    t0.elapsed()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One circuit's JSON object body.
fn circuit_json(case: &BenchCase, lib: &Library) -> String {
    let name = case.circuit.spec.name;
    let (mut det_best, mut stat_best) = (Duration::MAX, Duration::MAX);
    for _ in 0..3 {
        det_best = det_best.min(run_once(case, lib, DelayModel::GateBased));
        stat_best = stat_best.min(run_once(case, lib, stat_model()));
    }
    let g = grar(
        &case.circuit.cloud,
        lib,
        case.clock,
        &GrarConfig::new(EdlOverhead::MEDIUM).with_model(stat_model()),
    )
    .expect("suite circuit retimes");
    let summary = g.outcome.stat.as_ref().expect("statistical summary");
    // The headline yield is the worst endpoint that must meet the clock
    // period: endpoints the yield-aware rule flagged time into the
    // resiliency window by design, so their ~0 yields carry no signal.
    let target = summary.params.yield_target();
    let min_yield = summary
        .yields
        .iter()
        .copied()
        .filter(|&y| y >= target)
        .fold(1.0f64, f64::min);
    let mc = mc_yields(
        &case.circuit.cloud,
        &g.outcome.final_delays,
        case.clock,
        &g.outcome.cut,
        MC_SAMPLES,
        StatParams::DEFAULT.seed,
    );
    let (mut max_err, mut within) = (0.0f64, true);
    for (&sampled, &analytic) in mc.yields.iter().zip(&summary.yields) {
        max_err = max_err.max((sampled - analytic).abs());
        within &= (sampled - analytic).abs() <= mc_tolerance(analytic, MC_SAMPLES);
    }
    format!(
        "    {{\n      \"circuit\": \"{}\",\n      \"det_ms\": {:.3},\n      \
         \"stat_ms\": {:.3},\n      \"stat_over_det\": {:.2},\n      \
         \"min_yield\": {:.6},\n      \"edl\": {},\n      \
         \"mc_samples\": {},\n      \"mc_max_abs_err\": {:.6},\n      \
         \"mc_within_tolerance\": {}\n    }}",
        name,
        ms(det_best),
        ms(stat_best),
        ms(stat_best) / ms(det_best).max(1e-9),
        min_yield,
        g.outcome.seq.edl,
        MC_SAMPLES,
        max_err,
        within,
    )
}

/// Best-of-3 comparison over the tiny suite, written to
/// `BENCH_stat.json`.
fn run_json() {
    let lib = Library::fdsoi28();
    let cases: Vec<BenchCase> = paper_suite()
        .into_iter()
        .take(4)
        .map(|spec| build_case(&spec, &lib))
        .collect();
    let bodies: Vec<String> = cases.iter().map(|c| circuit_json(c, &lib)).collect();
    let json = format!("{{\n  \"circuits\": [\n{}\n  ]\n}}\n", bodies.join(",\n"));
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_stat.json");
    std::fs::write(&out, &json).expect("writes json");
    print!("{json}");
}

fn bench_stat(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let spec = paper_suite()
        .into_iter()
        .find(|s| s.name == "s1423")
        .expect("s1423 in suite");
    let case = build_case(&spec, &lib);
    let mut group = c.benchmark_group("grar_s1423");
    group.sample_size(10);
    group.bench_function("gate_based", |b| {
        b.iter(|| run_once(&case, &lib, DelayModel::GateBased))
    });
    group.bench_function("statistical", |b| {
        b.iter(|| run_once(&case, &lib, stat_model()))
    });
    group.finish();
}

criterion_group!(benches, bench_stat);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        run_json();
    } else {
        benches();
    }
}
