//! Times one end-to-end G-RAR run on a named suite circuit with the
//! phase breakdown the paper discusses in Section VI-D (the backward
//! delay queries dominate; the flow-solver step is a small share).
//!
//! ```text
//! cargo run --release -p retime-bench --example time_one -- s35932
//! ```

use retime_bench::load_suite;
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use std::time::Instant;
fn main() {
    let lib = Library::fdsoi28();
    let name = std::env::args().nth(1).unwrap_or_else(|| "s35932".into());
    std::env::set_var("RETIME_SUITE", "full");
    let case = load_suite(&lib)
        .into_iter()
        .find(|c| c.circuit.spec.name == name)
        .unwrap();
    let t0 = Instant::now();
    let g = grar(
        &case.circuit.cloud,
        &lib,
        case.clock,
        &GrarConfig::new(EdlOverhead::HIGH),
    )
    .unwrap();
    let counters: Vec<String> = g
        .phases
        .counters()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    println!(
        "{name}: {:.2}s total; phases {}; counters {}; slaves={} edl={}",
        t0.elapsed().as_secs_f64(),
        g.phases,
        counters.join(" "),
        g.outcome.seq.slaves,
        g.outcome.seq.edl
    );
}
