//! Per-circuit diagnostic sweep over the benchmark suite: endpoint
//! classification, initial near-criticality, and the three flows'
//! slave/EDL decisions side by side.
//!
//! ```text
//! RETIME_SUITE=small cargo run --release -p retime-bench --example suite_diagnostics
//! ```

use retime_bench::{load_suite, run_approaches};
use retime_core::classify_and_cut_set;
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::{Cut, NodeKind};
use retime_sta::{DelayModel, SinkClass, TimingAnalysis};

fn main() {
    let lib = Library::fdsoi28();
    for case in load_suite(&lib) {
        let cloud = &case.circuit.cloud;
        let sta = TimingAnalysis::new(cloud, &lib, case.clock, DelayModel::PathBased)
            .expect("sta builds");
        let (mut always, mut never, mut target, mut g_total) = (0usize, 0usize, 0usize, 0usize);
        for &t in cloud.sinks() {
            if !matches!(cloud.node(t).kind, NodeKind::Sink { master: Some(_) }) {
                continue;
            }
            let bp = sta.backward(t);
            match classify_and_cut_set(&sta, &bp) {
                (SinkClass::AlwaysErrorDetecting, _) => always += 1,
                (SinkClass::NeverErrorDetecting, _) => never += 1,
                (SinkClass::Target, g) => {
                    target += 1;
                    g_total += g.len();
                }
            }
        }
        let init = sta.cut_timing(&Cut::initial(cloud));
        let init_ed = init.error_detecting.iter().filter(|&&b| b).count();
        let a = run_approaches(&case, &lib, EdlOverhead::HIGH).expect("flows run");
        println!(
            "{:8} P={:.3} always={always:4} never={never:4} target={target:4} avg|g|={:4.1} init_ed={init_ed:4} | \
             base s={:4} e={:4} | rvl s={:4} e={:4} | G s={:4} e={:4} (saved {})",
            case.circuit.spec.name,
            case.clock.max_path_delay(),
            if target > 0 { g_total as f64 / target as f64 } else { 0.0 },
            a.base.seq.slaves,
            a.base.seq.edl,
            a.rvl.outcome.seq.slaves,
            a.rvl.outcome.seq.edl,
            a.grar.outcome.seq.slaves,
            a.grar.outcome.seq.edl,
            a.grar.predicted_saved,
        );
    }
}
