//! Standard-cell library model for resiliency-aware retiming.
//!
//! Provides what the paper's flows need from a Liberty-style library:
//!
//! * combinational cells with area and pin-to-pin rise/fall delays plus a
//!   load-dependent term ([`CombCell`]),
//! * sequential cells: flip-flops and level-sensitive latches
//!   ([`FlipFlopCell`], [`LatchCell`]) — the latch's D-to-Q delay differs
//!   from its clock-to-Q delay, which Section III notes can vary by up to
//!   40 % in a modern library,
//! * error-detecting latch styles (Fig. 2) and the amortized EDL area
//!   overhead [`EdlOverhead`] `c` swept over {0.5, 1.0, 2.0},
//! * the **virtual library** of Section V ([`VirtualLibrary`]): three latch
//!   groups distinguishing error-detecting (larger area), non-error-
//!   detecting (tighter setup), and normal latches.
//!
//! The built-in [`Library::fdsoi28`] library is calibrated so that a latch
//! is ≈43 % of a flip-flop's area, matching the ratio reported in the
//! paper's Section VI-D.
//!
//! # Example
//!
//! ```
//! use retime_liberty::{EdlOverhead, Library};
//!
//! let lib = Library::fdsoi28();
//! let c = EdlOverhead::MEDIUM;
//! let ed_latch_area = lib.latch().area * (1.0 + c.value());
//! assert!(ed_latch_area > lib.latch().area);
//! ```

pub mod cells;
pub mod library;
pub mod overhead;
pub mod sigma;
pub mod virtual_lib;

pub use cells::{CombCell, DelayArc, EdlStyle, FlipFlopCell, LatchCell, Sense};
pub use library::{Library, LibraryError};
pub use overhead::EdlOverhead;
pub use sigma::{parse_sigma_extension, SigmaError, SigmaSpec, SigmaTable};
pub use virtual_lib::{LatchGroup, VirtualLatch, VirtualLibrary};
