//! The EDL area overhead parameter `c`.

use std::fmt;

/// Amortized area overhead of an error-detecting latch relative to a
/// normal latch (the paper's `c`, Section II-B).
///
/// An error-detecting master latch costs `(1 + c) ×` the area of a normal
/// latch; the paper sweeps `c` over 0.5 (low), 1.0 (medium), and 2.0
/// (high), covering the published EDL design space.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct EdlOverhead(f64);

impl EdlOverhead {
    /// `c = 0.5`, the paper's "low" setting (e.g. a lean TDTB design).
    pub const LOW: EdlOverhead = EdlOverhead(0.5);
    /// `c = 1.0`, the paper's "medium" setting.
    pub const MEDIUM: EdlOverhead = EdlOverhead(1.0);
    /// `c = 2.0`, the paper's "high" setting (e.g. a shadow-MSFF design).
    pub const HIGH: EdlOverhead = EdlOverhead(2.0);

    /// The three settings evaluated throughout the paper's Section VI.
    pub const SWEEP: [EdlOverhead; 3] = [Self::LOW, Self::MEDIUM, Self::HIGH];

    /// Creates a custom overhead.
    ///
    /// # Panics
    /// Panics if `c` is negative or not finite.
    pub fn new(c: f64) -> EdlOverhead {
        assert!(c.is_finite() && c >= 0.0, "EDL overhead must be ≥ 0");
        EdlOverhead(c)
    }

    /// The raw overhead factor.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Area of an error-detecting latch given the normal latch area.
    pub fn ed_latch_area(self, latch_area: f64) -> f64 {
        latch_area * (1.0 + self.0)
    }

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        if self.0 <= 0.5 {
            "Low"
        } else if self.0 <= 1.0 {
            "Medium"
        } else {
            "High"
        }
    }
}

impl fmt::Display for EdlOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_ordering() {
        assert!(EdlOverhead::LOW < EdlOverhead::MEDIUM);
        assert!(EdlOverhead::MEDIUM < EdlOverhead::HIGH);
        assert_eq!(EdlOverhead::SWEEP.len(), 3);
    }

    #[test]
    fn ed_latch_area() {
        assert!((EdlOverhead::HIGH.ed_latch_area(1.0) - 3.0).abs() < 1e-12);
        assert!((EdlOverhead::LOW.ed_latch_area(2.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(EdlOverhead::LOW.label(), "Low");
        assert_eq!(EdlOverhead::MEDIUM.label(), "Medium");
        assert_eq!(EdlOverhead::HIGH.label(), "High");
        assert_eq!(EdlOverhead::MEDIUM.to_string(), "c=1");
    }

    #[test]
    #[should_panic(expected = "EDL overhead must be ≥ 0")]
    fn negative_rejected() {
        let _ = EdlOverhead::new(-1.0);
    }
}
