//! The virtual resynthesis library of Section V.
//!
//! Each latch of the base library is augmented into three groups so a
//! conventional, resiliency-unaware synthesis/retiming tool can reason
//! about the EDL trade-off:
//!
//! 1. **non-error-detecting** — setup extended by the resiliency window:
//!    data must arrive before the window opens (arrival ≤ Π),
//! 2. **error-detecting** — area enlarged by `(1 + c)`; arrivals may fall
//!    inside the window (arrival ≤ Π + φ1),
//! 3. **normal** — the unmodified latch, used in pipeline stages that are
//!    not error-detecting at all.

use crate::cells::LatchCell;
use crate::library::Library;
use crate::overhead::EdlOverhead;

/// The three latch groups of the virtual library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatchGroup {
    /// Group 1: normal area, tightened setup (arrival must precede the
    /// resiliency window).
    NonErrorDetecting,
    /// Group 2: area × (1 + c), arrivals allowed inside the window.
    ErrorDetecting,
    /// Group 3: the unmodified library latch.
    Normal,
}

impl LatchGroup {
    /// All groups, in the paper's order.
    pub const ALL: [LatchGroup; 3] = [
        LatchGroup::NonErrorDetecting,
        LatchGroup::ErrorDetecting,
        LatchGroup::Normal,
    ];
}

/// A latch variant in the virtual library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualLatch {
    /// Which group the variant belongs to.
    pub group: LatchGroup,
    /// Area in µm² (already including the EDL overhead for group 2).
    pub area: f64,
    /// Extra setup margin beyond the base latch setup. For group 1 this is
    /// the resiliency window `φ1`: the data must be stable that much
    /// earlier than a normal latch would require.
    pub extra_setup: f64,
    /// Underlying electrical latch (delays are unchanged by the grouping).
    pub base: LatchCell,
}

/// The virtual library: the base library plus the three latch groups for
/// a given EDL overhead and resiliency window.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualLibrary {
    base: Library,
    c: EdlOverhead,
    window: f64,
}

impl VirtualLibrary {
    /// Builds the virtual library.
    ///
    /// `window` is the resiliency window `φ1` (in ns) used to extend the
    /// setup time of group-1 latches.
    ///
    /// # Panics
    /// Panics if `window` is negative or not finite.
    pub fn build(base: Library, c: EdlOverhead, window: f64) -> VirtualLibrary {
        assert!(
            window.is_finite() && window >= 0.0,
            "resiliency window must be ≥ 0"
        );
        VirtualLibrary { base, c, window }
    }

    /// The underlying base library.
    pub fn base(&self) -> &Library {
        &self.base
    }

    /// The EDL overhead the library was built with.
    pub fn overhead(&self) -> EdlOverhead {
        self.c
    }

    /// The resiliency window the library was built with.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The latch variant for a group.
    pub fn latch(&self, group: LatchGroup) -> VirtualLatch {
        let base = *self.base.latch();
        match group {
            LatchGroup::NonErrorDetecting => VirtualLatch {
                group,
                area: base.area,
                extra_setup: self.window,
                base,
            },
            LatchGroup::ErrorDetecting => VirtualLatch {
                group,
                area: self.c.ed_latch_area(base.area),
                extra_setup: 0.0,
                base,
            },
            LatchGroup::Normal => VirtualLatch {
                group,
                area: base.area,
                extra_setup: 0.0,
                base,
            },
        }
    }

    /// Area difference saved by swapping an error-detecting latch for its
    /// non-error-detecting counterpart (the post-retiming swap step of
    /// Section V reclaims exactly this much per swap).
    pub fn swap_saving(&self) -> f64 {
        self.latch(LatchGroup::ErrorDetecting).area - self.latch(LatchGroup::NonErrorDetecting).area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vl() -> VirtualLibrary {
        VirtualLibrary::build(Library::fdsoi28(), EdlOverhead::MEDIUM, 0.12)
    }

    #[test]
    fn group_areas() {
        let v = vl();
        let n = v.latch(LatchGroup::NonErrorDetecting);
        let e = v.latch(LatchGroup::ErrorDetecting);
        let r = v.latch(LatchGroup::Normal);
        assert_eq!(n.area, r.area);
        assert!((e.area - 2.0 * r.area).abs() < 1e-9, "c=1 doubles the area");
    }

    #[test]
    fn setup_extension_only_on_group1() {
        let v = vl();
        assert!((v.latch(LatchGroup::NonErrorDetecting).extra_setup - 0.12).abs() < 1e-12);
        assert_eq!(v.latch(LatchGroup::ErrorDetecting).extra_setup, 0.0);
        assert_eq!(v.latch(LatchGroup::Normal).extra_setup, 0.0);
    }

    #[test]
    fn swap_saving_matches_overhead() {
        let v = vl();
        let expected = v.base().latch().area * v.overhead().value();
        assert!((v.swap_saving() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "resiliency window must be ≥ 0")]
    fn negative_window_rejected() {
        let _ = VirtualLibrary::build(Library::fdsoi28(), EdlOverhead::LOW, -0.1);
    }
}
