//! Cell descriptors: combinational cells, flip-flops, latches, and
//! error-detecting latch styles.

use std::fmt;

/// A rise/fall delay pair, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelayArc {
    /// Output-rising delay.
    pub rise: f64,
    /// Output-falling delay.
    pub fall: f64,
}

impl DelayArc {
    /// A symmetric arc.
    pub fn symmetric(d: f64) -> DelayArc {
        DelayArc { rise: d, fall: d }
    }

    /// The worse of the two transitions.
    pub fn max(self) -> f64 {
        self.rise.max(self.fall)
    }

    /// Element-wise sum.
    pub fn plus(self, other: DelayArc) -> DelayArc {
        DelayArc {
            rise: self.rise + other.rise,
            fall: self.fall + other.fall,
        }
    }

    /// Scales both transitions.
    pub fn scale(self, k: f64) -> DelayArc {
        DelayArc {
            rise: self.rise * k,
            fall: self.fall * k,
        }
    }
}

/// Unateness of a cell's input→output arcs, which determines the *valid
/// combinations of rise and fall delays* the paper's path-based timing
/// model tracks (Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Output follows input polarity (AND, OR, BUF).
    Positive,
    /// Output opposes input polarity (NAND, NOR, NOT).
    Negative,
    /// Either input transition can cause either output transition
    /// (XOR, XNOR).
    NonUnate,
}

/// A combinational standard cell.
///
/// The delay model is a linear pin-to-pin model:
/// `delay = intrinsic + per_extra_input · max(0, fanin − 2) + load_delay · fanout`.
/// The first term is split by output transition (rise/fall); the load and
/// stack terms are transition-independent. This is deliberately simple but
/// preserves the property the paper exploits: path-based (rise/fall aware)
/// analysis is strictly less pessimistic than taking the max cell delay.
#[derive(Debug, Clone, PartialEq)]
pub struct CombCell {
    /// Liberty-style cell name (`NAND2_X1`, …).
    pub name: String,
    /// Cell area in µm².
    pub area: f64,
    /// Intrinsic pin-to-pin delay for a 2-input instance driving one load.
    pub intrinsic: DelayArc,
    /// Additional delay per input beyond the second (transistor stacking).
    pub per_extra_input: f64,
    /// Additional delay per fanout driven.
    pub load_delay: f64,
    /// Additional area per input beyond the second.
    pub per_extra_input_area: f64,
    /// Arc unateness.
    pub sense: Sense,
}

impl CombCell {
    /// Pin-to-pin delay arc for an instance with `fanin` inputs driving
    /// `fanout` loads. `fanout` of zero is treated as one load.
    pub fn delay(&self, fanin: usize, fanout: usize) -> DelayArc {
        let stack = self.per_extra_input * (fanin.saturating_sub(2)) as f64;
        let load = self.load_delay * (fanout.max(1).saturating_sub(1)) as f64;
        DelayArc {
            rise: self.intrinsic.rise + stack + load,
            fall: self.intrinsic.fall + stack + load,
        }
    }

    /// Worst-case (gate-based model) delay: max over transitions.
    pub fn max_delay(&self, fanin: usize, fanout: usize) -> f64 {
        self.delay(fanin, fanout).max()
    }

    /// Area for an instance with `fanin` inputs.
    pub fn area(&self, fanin: usize) -> f64 {
        self.area + self.per_extra_input_area * (fanin.saturating_sub(2)) as f64
    }
}

/// An edge-triggered D flip-flop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipFlopCell {
    /// Area in µm².
    pub area: f64,
    /// Clock-to-Q delay.
    pub clk_to_q: f64,
    /// Setup time.
    pub setup: f64,
}

/// A level-sensitive latch.
///
/// Two launch delays matter for the arrival-time model of Eq. (5):
/// `clk_to_q` when data was already stable at the opening edge, `d_to_q`
/// when data flows through a transparent latch. Modern libraries separate
/// these by up to 40 %.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatchCell {
    /// Area in µm² (≈43 % of a flip-flop for the paper's library).
    pub area: f64,
    /// Clock-to-Q delay (`d^{ck_q}(l)` in Eq. 5).
    pub clk_to_q: f64,
    /// D-to-Q flow-through delay (`d^{d_q}(l)` in Eq. 5).
    pub d_to_q: f64,
    /// Setup time before the closing edge.
    pub setup: f64,
}

/// Error-detecting latch circuit styles (paper Fig. 2, after Bowman et
/// al. \[1\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdlStyle {
    /// Time-borrowing latch with a shadow master-slave flip-flop: the MSFF
    /// samples data at the window opening and an XOR flags discrepancies.
    ShadowMsff,
    /// Transition-detecting time-borrowing latch: conventional latch, XOR
    /// transition detector, and an asymmetric C-element holding the error.
    Tdtb,
}

impl EdlStyle {
    /// Typical amortized area overhead `c` of the style relative to a
    /// normal latch (the paper's Section II-B range is 0.5–2×; the shadow
    /// flip-flop sits at the costly end, the TDTB at the cheap end).
    pub fn typical_overhead(self) -> f64 {
        match self {
            EdlStyle::ShadowMsff => 2.0,
            EdlStyle::Tdtb => 0.5,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EdlStyle::ShadowMsff => "shadow-MSFF",
            EdlStyle::Tdtb => "TDTB",
        }
    }
}

impl fmt::Display for EdlStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand2() -> CombCell {
        CombCell {
            name: "NAND2".into(),
            area: 0.6,
            intrinsic: DelayArc {
                rise: 0.014,
                fall: 0.010,
            },
            per_extra_input: 0.004,
            load_delay: 0.002,
            per_extra_input_area: 0.2,
            sense: Sense::Negative,
        }
    }

    #[test]
    fn delay_scales_with_fanin_and_fanout() {
        let c = nand2();
        let base = c.delay(2, 1);
        assert_eq!(base.rise, 0.014);
        let wide = c.delay(4, 1);
        assert!((wide.rise - (0.014 + 0.008)).abs() < 1e-12);
        let loaded = c.delay(2, 3);
        assert!((loaded.fall - (0.010 + 0.004)).abs() < 1e-12);
        // Zero fanout treated as one load.
        assert_eq!(c.delay(2, 0), c.delay(2, 1));
    }

    #[test]
    fn max_delay_is_worst_transition() {
        let c = nand2();
        assert_eq!(c.max_delay(2, 1), 0.014);
    }

    #[test]
    fn area_scales_with_fanin() {
        let c = nand2();
        assert!((c.area(2) - 0.6).abs() < 1e-12);
        assert!((c.area(4) - 1.0).abs() < 1e-12);
        // 1-input degenerate instance does not go below base area.
        assert!((c.area(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn delay_arc_ops() {
        let a = DelayArc::symmetric(0.5);
        let b = DelayArc {
            rise: 0.1,
            fall: 0.2,
        };
        let s = a.plus(b);
        assert_eq!(s.rise, 0.6);
        assert_eq!(s.fall, 0.7);
        assert_eq!(s.max(), 0.7);
        assert_eq!(b.scale(2.0).fall, 0.4);
    }

    #[test]
    fn edl_styles() {
        assert!(EdlStyle::ShadowMsff.typical_overhead() > EdlStyle::Tdtb.typical_overhead());
        assert_eq!(EdlStyle::Tdtb.to_string(), "TDTB");
    }
}
