//! Liberty *sigma extension*: per-cell process-variation data.
//!
//! Commercial statistical libraries ship variation-aware tables next to
//! the nominal Liberty views. We model the part the statistical delay
//! mode consumes: per cell, the standard deviation of the pin-to-pin
//! delay split into a *globally correlated* component (die-to-die,
//! shared by every instance) and an *independent local* component
//! (within-die mismatch), both expressed as fractions of the nominal
//! delay.
//!
//! The text format is a small Liberty-style block:
//!
//! ```text
//! sigma_extension (fdsoi28) {
//!   default_sigma_global : 0.018;
//!   default_sigma_local  : 0.024;
//!   cell (NAND2_X1) { sigma_global : 0.012; sigma_local : 0.020; }
//!   cell (XOR2_X1)  { sigma_global : 0.024; sigma_local : 0.032; }
//! }
//! ```
//!
//! Cells without an explicit entry use the defaults. A parsed
//! [`SigmaTable`] attaches to a [`Library`](crate::Library) via
//! [`Library::with_sigma`](crate::Library::with_sigma); when no table is
//! attached, the statistical delay mode falls back to its configurable
//! seeded sigma-as-fraction-of-nominal model.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Per-cell delay variation as fractions of the nominal delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaSpec {
    /// Globally correlated sigma (die-to-die), fraction of nominal.
    pub global: f64,
    /// Independent local sigma (within-die mismatch), fraction of
    /// nominal.
    pub local: f64,
}

/// A parsed sigma extension: defaults plus per-cell overrides, keyed by
/// the Liberty cell name (`NAND2_X1`, …).
#[derive(Debug, Clone, PartialEq)]
pub struct SigmaTable {
    name: String,
    default: SigmaSpec,
    cells: HashMap<String, SigmaSpec>,
}

impl SigmaTable {
    /// A table with the given defaults and no per-cell overrides.
    pub fn uniform(name: impl Into<String>, default: SigmaSpec) -> SigmaTable {
        SigmaTable {
            name: name.into(),
            default,
            cells: HashMap::new(),
        }
    }

    /// The extension's library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variation spec for a cell (the default when no override
    /// exists).
    pub fn for_cell(&self, cell: &str) -> SigmaSpec {
        self.cells.get(cell).copied().unwrap_or(self.default)
    }

    /// Number of per-cell overrides.
    pub fn overrides(&self) -> usize {
        self.cells.len()
    }
}

/// Errors raised while parsing a sigma extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmaError {
    /// The text is not a `sigma_extension (name) { … }` block.
    Malformed(String),
    /// An attribute value is not a finite non-negative number.
    BadValue {
        /// The attribute name.
        attr: String,
        /// The offending raw text.
        raw: String,
    },
}

impl fmt::Display for SigmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigmaError::Malformed(why) => write!(f, "malformed sigma extension: {why}"),
            SigmaError::BadValue { attr, raw } => {
                write!(f, "sigma extension attribute {attr} has bad value {raw:?}")
            }
        }
    }
}

impl Error for SigmaError {}

/// Parses a sigma-extension block (see the module docs for the format).
/// Comments (`/* … */` and `// …`) are stripped; attribute order is
/// free; unknown attributes are rejected so typos can't silently zero a
/// cell's variation.
///
/// # Errors
/// Returns [`SigmaError`] on structural or numeric problems.
pub fn parse_sigma_extension(text: &str) -> Result<SigmaTable, SigmaError> {
    let text = strip_comments(text);
    let rest = text.trim();
    let rest = rest
        .strip_prefix("sigma_extension")
        .ok_or_else(|| SigmaError::Malformed("missing `sigma_extension` keyword".into()))?
        .trim_start();
    let (name, rest) = parse_paren_name(rest)?;
    let body = parse_braced(rest.trim_start())?;

    // First scan: split the block into default attributes and raw cell
    // bodies, so the defaults apply no matter where in the block they
    // were written.
    let mut default = SigmaSpec {
        global: 0.0,
        local: 0.0,
    };
    let mut cell_bodies: Vec<(String, &str)> = Vec::new();
    let mut cursor = body.trim();
    while !cursor.is_empty() {
        if let Some(after) = cursor.strip_prefix("cell") {
            let (cell_name, after) = parse_paren_name(after.trim_start())?;
            let after = after.trim_start();
            let cell_body = parse_braced(after)?;
            cell_bodies.push((cell_name.to_string(), cell_body));
            let consumed = cursor.len() - after.len() + cell_body.len() + 2;
            cursor = cursor[consumed..].trim_start();
        } else {
            let semi = cursor.find(';').ok_or_else(|| {
                SigmaError::Malformed(format!("dangling text {:?}", cursor.trim()))
            })?;
            let (attr, value) = parse_attr(&cursor[..semi])?;
            match attr.as_str() {
                "default_sigma_global" => default.global = value,
                "default_sigma_local" => default.local = value,
                other => {
                    return Err(SigmaError::Malformed(format!(
                        "unknown attribute `{other}`"
                    )))
                }
            }
            cursor = cursor[semi + 1..].trim_start();
        }
    }
    // Second pass: resolve each cell on top of the (now complete)
    // defaults.
    let mut cells = HashMap::new();
    for (cell_name, cell_body) in cell_bodies {
        let mut spec = default;
        for (attr, value) in parse_attrs(cell_body)? {
            match attr.as_str() {
                "sigma_global" => spec.global = value,
                "sigma_local" => spec.local = value,
                other => {
                    return Err(SigmaError::Malformed(format!(
                        "unknown cell attribute `{other}`"
                    )))
                }
            }
        }
        cells.insert(cell_name, spec);
    }
    Ok(SigmaTable {
        name: name.to_string(),
        default,
        cells,
    })
}

fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("/*") {
        out.push_str(&rest[..start]);
        match rest[start..].find("*/") {
            Some(end) => rest = &rest[start + end + 2..],
            None => return out,
        }
    }
    out.push_str(rest);
    out.lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn parse_paren_name(rest: &str) -> Result<(&str, &str), SigmaError> {
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| SigmaError::Malformed("expected `(`".into()))?;
    let close = rest
        .find(')')
        .ok_or_else(|| SigmaError::Malformed("unclosed `(`".into()))?;
    Ok((rest[..close].trim(), &rest[close + 1..]))
}

/// Returns the text inside a balanced `{ … }` starting at `rest`.
fn parse_braced(rest: &str) -> Result<&str, SigmaError> {
    let rest = rest
        .strip_prefix('{')
        .ok_or_else(|| SigmaError::Malformed("expected `{`".into()))?;
    let mut depth = 1usize;
    for (i, ch) in rest.char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(&rest[..i]);
                }
            }
            _ => {}
        }
    }
    Err(SigmaError::Malformed("unclosed `{`".into()))
}

fn parse_attrs(body: &str) -> Result<Vec<(String, f64)>, SigmaError> {
    body.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_attr)
        .collect()
}

fn parse_attr(stmt: &str) -> Result<(String, f64), SigmaError> {
    let (attr, raw) = stmt
        .split_once(':')
        .ok_or_else(|| SigmaError::Malformed(format!("expected `name : value;`, got {stmt:?}")))?;
    let attr = attr.trim().to_string();
    let raw = raw.trim();
    let value: f64 = raw.parse().map_err(|_| SigmaError::BadValue {
        attr: attr.clone(),
        raw: raw.to_string(),
    })?;
    if !value.is_finite() || value < 0.0 {
        return Err(SigmaError::BadValue {
            attr,
            raw: raw.to_string(),
        });
    }
    Ok((attr, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
/* variation views for the synthetic fdsoi28 library */
sigma_extension (fdsoi28) {
  default_sigma_global : 0.018;
  default_sigma_local  : 0.024; // within-die
  cell (NAND2_X1) { sigma_global : 0.012; sigma_local : 0.020; }
  cell (XOR2_X1)  { sigma_global : 0.024; sigma_local : 0.032; }
}
";

    #[test]
    fn parses_defaults_and_overrides() {
        let t = parse_sigma_extension(SAMPLE).unwrap();
        assert_eq!(t.name(), "fdsoi28");
        assert_eq!(t.overrides(), 2);
        let nand = t.for_cell("NAND2_X1");
        assert_eq!(nand.global, 0.012);
        assert_eq!(nand.local, 0.020);
        let other = t.for_cell("BUF_X1");
        assert_eq!(other.global, 0.018);
        assert_eq!(other.local, 0.024);
    }

    #[test]
    fn rejects_unknown_attributes() {
        let bad = "sigma_extension (x) { default_sigma_glbal : 0.1; }";
        assert!(matches!(
            parse_sigma_extension(bad),
            Err(SigmaError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_bad_numbers() {
        for raw in ["-0.1", "nan", "lots"] {
            let bad = format!("sigma_extension (x) {{ default_sigma_global : {raw}; }}");
            assert!(
                matches!(
                    parse_sigma_extension(&bad),
                    Err(SigmaError::BadValue { .. })
                ),
                "{raw} accepted"
            );
        }
    }

    #[test]
    fn rejects_structural_garbage() {
        for bad in [
            "",
            "sigma_extension",
            "sigma_extension (x)",
            "sigma_extension (x) { cell (y) ",
            "sigma_extension (x) { stray",
        ] {
            assert!(parse_sigma_extension(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn defaults_apply_regardless_of_declaration_order() {
        let late = "\
sigma_extension (x) {
  cell (A) { sigma_local : 0.05; }
  default_sigma_global : 0.02;
  default_sigma_local : 0.03;
}
";
        let t = parse_sigma_extension(late).unwrap();
        let a = t.for_cell("A");
        assert_eq!(a.global, 0.02, "cell inherits the late global default");
        assert_eq!(a.local, 0.05);
    }

    #[test]
    fn uniform_table() {
        let t = SigmaTable::uniform(
            "u",
            SigmaSpec {
                global: 0.01,
                local: 0.02,
            },
        );
        assert_eq!(t.for_cell("ANY").local, 0.02);
        assert_eq!(t.overrides(), 0);
    }
}
