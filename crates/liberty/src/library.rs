//! The [`Library`]: a complete cell library.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::cells::{CombCell, DelayArc, FlipFlopCell, LatchCell, Sense};
use crate::sigma::SigmaTable;

/// Errors raised by library queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibraryError {
    /// The library has no cell implementing the requested function.
    MissingCell(String),
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::MissingCell(g) => write!(f, "library has no cell for `{g}`"),
        }
    }
}

impl Error for LibraryError {}

/// Gate functions a library maps. This mirrors
/// `retime_netlist::Gate`'s combinational alphabet but is kept stringly
/// independent so the library crate has no netlist dependency; the STA
/// crate bridges the two.
pub type GateName = &'static str;

/// A complete standard-cell library: combinational cells keyed by function
/// name, plus the sequential cells the retiming flows need.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    name: String,
    cells: HashMap<GateName, CombCell>,
    flip_flop: FlipFlopCell,
    latch: LatchCell,
    sigma: Option<SigmaTable>,
}

impl Library {
    /// Creates a library from parts.
    pub fn new(
        name: impl Into<String>,
        cells: impl IntoIterator<Item = (GateName, CombCell)>,
        flip_flop: FlipFlopCell,
        latch: LatchCell,
    ) -> Library {
        Library {
            name: name.into(),
            cells: cells.into_iter().collect(),
            flip_flop,
            latch,
            sigma: None,
        }
    }

    /// Attaches a parsed Liberty sigma extension
    /// ([`crate::parse_sigma_extension`]); the statistical delay mode
    /// reads per-cell variation from it instead of its seeded fallback.
    #[must_use]
    pub fn with_sigma(mut self, sigma: SigmaTable) -> Library {
        self.sigma = Some(sigma);
        self
    }

    /// The attached sigma extension, if any.
    pub fn sigma(&self) -> Option<&SigmaTable> {
        self.sigma.as_ref()
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The combinational cell for a function, by name
    /// (`"AND"`, `"NAND"`, `"OR"`, `"NOR"`, `"XOR"`, `"XNOR"`, `"NOT"`,
    /// `"BUFF"`).
    ///
    /// # Errors
    /// Returns [`LibraryError::MissingCell`] for unmapped functions.
    pub fn cell(&self, gate: &str) -> Result<&CombCell, LibraryError> {
        self.cells
            .get(gate)
            .ok_or_else(|| LibraryError::MissingCell(gate.to_string()))
    }

    /// All combinational cells.
    pub fn cells(&self) -> impl Iterator<Item = (&GateName, &CombCell)> {
        self.cells.iter()
    }

    /// The flip-flop cell.
    pub fn flip_flop(&self) -> &FlipFlopCell {
        &self.flip_flop
    }

    /// The latch cell.
    pub fn latch(&self) -> &LatchCell {
        &self.latch
    }

    /// Ratio of latch area to flip-flop area (the paper reports ≈0.43 for
    /// its FDSOI 28 nm library).
    pub fn latch_to_flop_ratio(&self) -> f64 {
        self.latch.area / self.flip_flop.area
    }

    /// A plausible FDSOI-28 nm-class library.
    ///
    /// Delays are in nanoseconds, areas in µm². The values are synthetic
    /// (the paper's commercial library is not redistributable) but
    /// calibrated to the two properties the paper's conclusions depend on:
    ///
    /// * latch area ≈ 43 % of flip-flop area (Section VI-D),
    /// * the latch's D-to-Q delay is 40 % larger than its clock-to-Q
    ///   delay (Section III).
    pub fn fdsoi28() -> Library {
        fn cc(name: &str, area: f64, rise: f64, fall: f64, sense: Sense) -> CombCell {
            CombCell {
                name: name.to_string(),
                area,
                intrinsic: DelayArc { rise, fall },
                per_extra_input: 0.004,
                load_delay: 0.0015,
                per_extra_input_area: 0.25,
                sense,
            }
        }
        let cells: Vec<(GateName, CombCell)> = vec![
            ("BUFF", cc("BUF_X1", 0.49, 0.016, 0.015, Sense::Positive)),
            ("NOT", cc("INV_X1", 0.33, 0.009, 0.007, Sense::Negative)),
            ("AND", cc("AND2_X1", 0.82, 0.021, 0.019, Sense::Positive)),
            ("NAND", cc("NAND2_X1", 0.65, 0.013, 0.010, Sense::Negative)),
            ("OR", cc("OR2_X1", 0.82, 0.022, 0.020, Sense::Positive)),
            ("NOR", cc("NOR2_X1", 0.65, 0.015, 0.011, Sense::Negative)),
            ("XOR", cc("XOR2_X1", 1.14, 0.024, 0.022, Sense::NonUnate)),
            ("XNOR", cc("XNOR2_X1", 1.14, 0.024, 0.023, Sense::NonUnate)),
        ];
        Library::new(
            "fdsoi28-synthetic",
            cells,
            FlipFlopCell {
                area: 3.26,
                clk_to_q: 0.055,
                setup: 0.020,
            },
            LatchCell {
                area: 1.40, // 1.40 / 3.26 ≈ 0.43
                clk_to_q: 0.040,
                d_to_q: 0.056, // 40 % larger than clk-to-q
                setup: 0.015,
            },
        )
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::fdsoi28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_complete() {
        let lib = Library::fdsoi28();
        for g in ["BUFF", "NOT", "AND", "NAND", "OR", "NOR", "XOR", "XNOR"] {
            assert!(lib.cell(g).is_ok(), "missing {g}");
        }
        assert_eq!(
            lib.cell("MUX"),
            Err(LibraryError::MissingCell("MUX".into()))
        );
    }

    #[test]
    fn latch_flop_ratio_calibrated() {
        let lib = Library::fdsoi28();
        let r = lib.latch_to_flop_ratio();
        assert!((r - 0.43).abs() < 0.01, "ratio {r} should be ≈ 0.43");
    }

    #[test]
    fn latch_dq_vs_ckq_spread() {
        let lib = Library::fdsoi28();
        let spread = lib.latch().d_to_q / lib.latch().clk_to_q;
        assert!((spread - 1.4).abs() < 1e-9, "spread {spread} should be 1.4");
    }

    #[test]
    fn inverting_cells_marked() {
        let lib = Library::fdsoi28();
        assert_eq!(lib.cell("NAND").unwrap().sense, Sense::Negative);
        assert_eq!(lib.cell("AND").unwrap().sense, Sense::Positive);
        assert_eq!(lib.cell("XOR").unwrap().sense, Sense::NonUnate);
    }

    #[test]
    fn nand_faster_than_and() {
        // Inverting gates are faster than their compound counterparts in
        // any realistic library; downstream heuristics rely on sane
        // orderings rather than exact values.
        let lib = Library::fdsoi28();
        assert!(
            lib.cell("NAND").unwrap().max_delay(2, 1) < lib.cell("AND").unwrap().max_delay(2, 1)
        );
    }

    #[test]
    fn default_trait() {
        assert_eq!(Library::default().name(), "fdsoi28-synthetic");
    }
}
