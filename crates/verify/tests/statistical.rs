//! Statistical-mode certification: every flow run under
//! `DelayModel::Statistical` must produce a certificate the checker
//! accepts — including the exact `StatSummary` replay and the
//! independent Monte Carlo yield cross-check — and tampering with the
//! statistical claims must be caught.

use retime_circuits::{paper_suite, Fig4};
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::{CombCloud, Netlist};
use retime_retime::base_retime;
use retime_sta::{DelayModel, StatParams, TimingAnalysis, TwoPhaseClock};
use retime_verify::{verify_certificate, FlowKind, VerifyError, VerifyOptions, VerifySetup};
use retime_vl::{vl_retime, VlConfig, VlVariant};

fn stat_model() -> DelayModel {
    DelayModel::Statistical(StatParams::new(0.03, 0.005, 0.9987, 0x5EED))
}

fn feasible_clock(cloud: &CombCloud, lib: &Library) -> TwoPhaseClock {
    let sta = TimingAnalysis::new(
        cloud,
        lib,
        TwoPhaseClock::from_max_delay(1.0),
        DelayModel::GateBased,
    )
    .expect("probe sta builds");
    let crit = cloud
        .sinks()
        .iter()
        .map(|&t| sta.df(t))
        .fold(0.0f64, f64::max);
    let latch = lib.latch();
    // Extra slack over the deterministic calibration: the margined
    // arrivals must stay feasible too.
    TwoPhaseClock::from_max_delay((crit + latch.d_to_q + latch.clk_to_q) / 0.6)
}

fn certify_stat_flows(netlist: &Netlist, cloud: &CombCloud, clock: TwoPhaseClock, label: &str) {
    let lib = Library::fdsoi28();
    let model = stat_model();
    let c = EdlOverhead::MEDIUM;
    let opts = VerifyOptions::default();
    let setup = VerifySetup {
        netlist,
        cloud,
        lib: &lib,
        clock,
        model,
        overhead: c,
    };
    let base = base_retime(cloud, &lib, clock, model, c).expect("base runs");
    assert!(base.stat.is_some(), "{label}: base must attach a summary");
    verify_certificate(&setup, FlowKind::Base, &base, &opts)
        .unwrap_or_else(|e| panic!("{label} base: {e}"));
    let rvl = vl_retime(
        cloud,
        &lib,
        clock,
        &VlConfig::new(VlVariant::Rvl, c).with_model(model),
    )
    .expect("RVL runs");
    verify_certificate(&setup, FlowKind::Vl, &rvl.outcome, &opts)
        .unwrap_or_else(|e| panic!("{label} rvl: {e}"));
    let g = grar(cloud, &lib, clock, &GrarConfig::new(c).with_model(model)).expect("grar runs");
    verify_certificate(&setup, FlowKind::Grar, &g.outcome, &opts)
        .unwrap_or_else(|e| panic!("{label} grar: {e}"));
}

#[test]
fn fig4_statistical_flows_certify() {
    let fig = Fig4::new();
    let lib = Library::fdsoi28();
    let clock = feasible_clock(&fig.cloud, &lib);
    certify_stat_flows(&fig.netlist, &fig.cloud, clock, "fig4");
}

#[test]
fn tiny_suite_statistical_grar_certifies() {
    for spec in paper_suite().into_iter().take(2) {
        let circuit = spec.build().expect("suite circuit builds");
        let lib = Library::fdsoi28();
        let clock = feasible_clock(&circuit.cloud, &lib);
        let model = stat_model();
        let g = grar(
            &circuit.cloud,
            &lib,
            clock,
            &GrarConfig::new(EdlOverhead::MEDIUM).with_model(model),
        )
        .expect("grar runs");
        let setup = VerifySetup {
            netlist: &circuit.netlist,
            cloud: &circuit.cloud,
            lib: &lib,
            clock,
            model,
            overhead: EdlOverhead::MEDIUM,
        };
        // Fewer simulation cycles: the statistical point of this test is
        // the replay + Monte Carlo stages, already covered structurally.
        let opts = VerifyOptions {
            cycles: 64,
            mc_samples: 2048,
            ..VerifyOptions::default()
        };
        verify_certificate(&setup, FlowKind::Grar, &g.outcome, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn tampered_statistical_summary_is_rejected() {
    let fig = Fig4::new();
    let lib = Library::fdsoi28();
    let clock = feasible_clock(&fig.cloud, &lib);
    let model = stat_model();
    let g = grar(
        &fig.cloud,
        &lib,
        clock,
        &GrarConfig::new(EdlOverhead::MEDIUM).with_model(model),
    )
    .expect("grar runs");
    let setup = VerifySetup {
        netlist: &fig.netlist,
        cloud: &fig.cloud,
        lib: &lib,
        clock,
        model,
        overhead: EdlOverhead::MEDIUM,
    };
    let opts = VerifyOptions::default();

    // Dropping the summary entirely is caught.
    let mut missing = g.outcome.clone();
    missing.stat = None;
    let err = verify_certificate(&setup, FlowKind::Grar, &missing, &opts)
        .expect_err("missing summary must be rejected");
    assert!(matches!(err, VerifyError::TimingMismatch { .. }), "{err}");

    // Inflating a claimed yield is caught by the exact replay.
    let mut inflated = g.outcome.clone();
    let stat = inflated.stat.as_mut().expect("statistical outcome");
    if let Some(y) = stat.yields.first_mut() {
        *y = (*y * 0.5).max(0.0);
    }
    stat.min_yield = stat.yields.iter().copied().fold(1.0, f64::min);
    let err = verify_certificate(&setup, FlowKind::Grar, &inflated, &opts)
        .expect_err("tampered yields must be rejected");
    assert!(matches!(err, VerifyError::TimingMismatch { .. }), "{err}");
}
