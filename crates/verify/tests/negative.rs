//! Negative-path coverage: each kind of certificate corruption must be
//! rejected with its own descriptive [`VerifyError`] variant — a flipped
//! retiming label, a flipped EDL flag, and mis-counted area figures.

use retime_circuits::paper_suite;
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::NodeId;
use retime_retime::RetimeOutcome;
use retime_sta::DelayModel;
use retime_verify::{verify_certificate, FlowKind, VerifyError, VerifyOptions, VerifySetup};

/// A genuine G-RAR outcome on the smallest suite circuit, plus
/// everything needed to re-verify it.
struct Fixture {
    circuit: retime_circuits::SuiteCircuit,
    lib: Library,
    clock: retime_sta::TwoPhaseClock,
    outcome: RetimeOutcome,
}

fn fixture() -> Fixture {
    let lib = Library::fdsoi28();
    let circuit = paper_suite()[0].build().expect("suite circuit builds");
    let clock = circuit
        .calibrated_clock(&lib, DelayModel::PathBased)
        .expect("clock calibrates");
    let outcome = grar(
        &circuit.cloud,
        &lib,
        clock,
        &GrarConfig::new(EdlOverhead::MEDIUM),
    )
    .expect("grar runs")
    .outcome;
    Fixture {
        circuit,
        lib,
        clock,
        outcome,
    }
}

impl Fixture {
    fn verify(&self, outcome: &RetimeOutcome, cycles: usize) -> Result<(), VerifyError> {
        let setup = VerifySetup {
            netlist: &self.circuit.netlist,
            cloud: &self.circuit.cloud,
            lib: &self.lib,
            clock: self.clock,
            model: DelayModel::PathBased,
            overhead: EdlOverhead::MEDIUM,
        };
        verify_certificate(
            &setup,
            FlowKind::Grar,
            outcome,
            &VerifyOptions {
                cycles,
                ..VerifyOptions::default()
            },
        )
        .map(|_| ())
    }
}

#[test]
fn genuine_certificate_is_accepted() {
    let fx = fixture();
    fx.verify(&fx.outcome, 256)
        .expect("genuine certificate passes");
}

#[test]
fn flipped_retiming_label_is_rejected() {
    let fx = fixture();
    let cloud = &fx.circuit.cloud;
    // Flip a single node's moved bit so the label assignment no longer
    // describes a legal fanin-closed cut. Such a node always exists:
    // flipping an unmoved node with an unmoved fanin (or a moved node
    // with a moved fanout) breaks closure.
    let mutated = (0..cloud.len()).find_map(|i| {
        let v = NodeId(i as u32);
        let mut outcome = fx.outcome.clone();
        outcome.cut.set_moved(v, !outcome.cut.is_moved(v));
        let broken = outcome.cut.validate(cloud).is_err() || !outcome.cut.check_paths(cloud);
        broken.then_some(outcome)
    });
    let mutated = mutated.expect("some single-bit flip breaks cut legality");
    let err = fx
        .verify(&mutated, 0)
        .expect_err("corrupted labels rejected");
    assert!(
        matches!(err, VerifyError::IllegalCut { .. }),
        "expected IllegalCut, got: {err}"
    );
    assert!(!err.to_string().is_empty(), "error message is descriptive");
}

#[test]
fn flipped_edl_flag_is_rejected() {
    let fx = fixture();
    let mut mutated = fx.outcome.clone();
    assert!(!mutated.ed_sinks.is_empty(), "suite circuits have sinks");
    mutated.ed_sinks[0] = !mutated.ed_sinks[0];
    let err = fx.verify(&mutated, 0).expect_err("wrong EDL flag rejected");
    match err {
        VerifyError::EdlFlagMismatch {
            sink,
            claimed,
            recomputed,
        } => {
            let expected = &fx.circuit.cloud.node(fx.circuit.cloud.sinks()[0]).name;
            assert_eq!(&sink, expected, "mismatch names the offending sink");
            assert_eq!(claimed, mutated.ed_sinks[0]);
            assert_eq!(recomputed, fx.outcome.ed_sinks[0]);
        }
        other => panic!("expected EdlFlagMismatch, got: {other}"),
    }
}

#[test]
fn miscounted_area_is_rejected() {
    let fx = fixture();
    // A wrong latch count is caught by the exact recount.
    let mut wrong_count = fx.outcome.clone();
    wrong_count.seq.slaves += 1;
    let err = fx
        .verify(&wrong_count, 0)
        .expect_err("wrong count rejected");
    assert!(
        matches!(
            err,
            VerifyError::AreaMismatch {
                field: "slaves",
                ..
            }
        ),
        "expected AreaMismatch on slaves, got: {err}"
    );
    // A perturbed area figure is caught by the float recomputation.
    let mut wrong_area = fx.outcome.clone();
    wrong_area.seq.slave_area += 0.25;
    let err = fx.verify(&wrong_area, 0).expect_err("wrong area rejected");
    assert!(
        matches!(
            err,
            VerifyError::AreaMismatch {
                field: "slave_area",
                ..
            }
        ),
        "expected AreaMismatch on slave_area, got: {err}"
    );
    // And so is a wrong bottom line.
    let mut wrong_total = fx.outcome.clone();
    wrong_total.total_area += 1.0;
    let err = fx
        .verify(&wrong_total, 0)
        .expect_err("wrong total rejected");
    assert!(
        matches!(
            err,
            VerifyError::AreaMismatch {
                field: "total_area",
                ..
            }
        ),
        "expected AreaMismatch on total_area, got: {err}"
    );
}
