//! Functional-equivalence regression suite: every flow on the Fig. 4
//! instance and the tiny benchmark suite must produce a certificate the
//! independent checker accepts end to end — label feasibility, timing,
//! area accounting, and bit-level equivalence of the retimed netlist
//! over 256 random input cycles.

use retime_circuits::{paper_suite, Fig4};
use retime_core::{grar, GrarConfig};
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::{CombCloud, Netlist};
use retime_retime::base_retime;
use retime_sta::{DelayModel, TimingAnalysis, TwoPhaseClock};
use retime_verify::{verify_certificate, FlowKind, VerifyOptions, VerifySetup};
use retime_vl::{vl_retime, VlConfig, VlVariant};

/// Runs base, RVL-RAR, and G-RAR at every EDL overhead and certifies
/// each outcome, equivalence check included.
fn certify_all_flows(netlist: &Netlist, cloud: &CombCloud, clock: TwoPhaseClock, label: &str) {
    let lib = Library::fdsoi28();
    let opts = VerifyOptions {
        cycles: 256,
        ..VerifyOptions::default()
    };
    for c in EdlOverhead::SWEEP {
        let setup = VerifySetup {
            netlist,
            cloud,
            lib: &lib,
            clock,
            model: DelayModel::PathBased,
            overhead: c,
        };
        let base = base_retime(cloud, &lib, clock, DelayModel::PathBased, c).expect("base runs");
        verify_certificate(&setup, FlowKind::Base, &base, &opts)
            .unwrap_or_else(|e| panic!("{label} base c={c:?}: {e}"));
        let rvl =
            vl_retime(cloud, &lib, clock, &VlConfig::new(VlVariant::Rvl, c)).expect("RVL runs");
        verify_certificate(&setup, FlowKind::Vl, &rvl.outcome, &opts)
            .unwrap_or_else(|e| panic!("{label} rvl c={c:?}: {e}"));
        let g = grar(cloud, &lib, clock, &GrarConfig::new(c)).expect("grar runs");
        let report = verify_certificate(&setup, FlowKind::Grar, &g.outcome, &opts)
            .unwrap_or_else(|e| panic!("{label} grar c={c:?}: {e}"));
        assert_eq!(report.cycles, 256, "{label}: equivalence stage must run");
    }
}

/// A clock loose enough for every flow to be feasible, derived from the
/// circuit's own critical delay (the suite's calibration scheme).
fn feasible_clock(cloud: &CombCloud, lib: &Library) -> TwoPhaseClock {
    let sta = TimingAnalysis::new(
        cloud,
        lib,
        TwoPhaseClock::from_max_delay(1.0),
        DelayModel::PathBased,
    )
    .expect("probe sta builds");
    let crit = cloud
        .sinks()
        .iter()
        .map(|&t| sta.df(t))
        .fold(0.0f64, f64::max);
    let latch = lib.latch();
    TwoPhaseClock::from_max_delay((crit + latch.d_to_q + latch.clk_to_q) / 0.7)
}

#[test]
fn fig4_all_flows_certify_at_all_overheads() {
    let fig = Fig4::new();
    let lib = Library::fdsoi28();
    let clock = feasible_clock(&fig.cloud, &lib);
    certify_all_flows(&fig.netlist, &fig.cloud, clock, "fig4");
}

#[test]
fn tiny_suite_all_flows_certify_at_all_overheads() {
    for spec in paper_suite().into_iter().take(4) {
        let circuit = spec.build().expect("suite circuit builds");
        let clock = circuit
            .calibrated_clock(&Library::fdsoi28(), DelayModel::PathBased)
            .expect("clock calibrates");
        certify_all_flows(&circuit.netlist, &circuit.cloud, clock, spec.name);
    }
}
