//! The verifier's failure vocabulary.
//!
//! Every way a retiming certificate can be wrong gets its own variant
//! with enough context to act on — a verifier that only says "invalid"
//! is barely better than no verifier.

use std::fmt;

/// A certificate-verification failure.
///
/// Variants are *diagnoses*, not just rejections: each names the
/// accounting layer that disagreed (labels, optimality, EDL typing,
/// area, timing, flow certificate, or simulation) and carries the
/// claimed-vs-recomputed values where they exist.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The cut is structurally illegal (not fanin-closed, a sink moved,
    /// or a latch-free path).
    IllegalCut {
        /// What the cut validator reported.
        detail: String,
    },
    /// The retiming labels violate the Eq. (10) ILP — a bound or a
    /// difference constraint fails under `IlpFormulation::is_feasible`.
    LabelInfeasible {
        /// The first violated bound or constraint, rendered.
        violated: String,
    },
    /// The certificate's objective does not match the one recomputed
    /// from its own labels (in `BREADTH_SCALE` units).
    ObjectiveMismatch {
        /// Objective the certificate claims.
        reported: i64,
        /// Objective recomputed from the labels.
        recomputed: i64,
    },
    /// The reference solver found a strictly better objective than the
    /// certificate achieves (in `BREADTH_SCALE` units) — the fast
    /// engine's claimed optimum is wrong.
    Suboptimal {
        /// Objective the certificate's cut achieves.
        certificate: i64,
        /// Objective of the independent reference re-solve.
        reference: i64,
    },
    /// A sink's claimed EDL flag disagrees with a from-scratch timing
    /// pass over the final delays.
    EdlFlagMismatch {
        /// The sink's name.
        sink: String,
        /// The flag the certificate claims.
        claimed: bool,
        /// The flag the fresh `CutTiming` assigns.
        recomputed: bool,
    },
    /// A target master whose whole cut-set `g(t)` was retimed through
    /// still times inside the resiliency window — the pseudo-node reward
    /// the solver collected was unsound.
    CutSetInconsistent {
        /// The target sink's name.
        sink: String,
    },
    /// A sequential-area figure disagrees with an independent recount
    /// against the library's latch/EDL overheads.
    AreaMismatch {
        /// Which figure (`"slaves"`, `"edl_area"`, `"total_area"`, …).
        field: &'static str,
        /// The value the certificate claims.
        claimed: f64,
        /// The independently recomputed value.
        recomputed: f64,
    },
    /// The certificate's stored `CutTiming` differs from a from-scratch
    /// STA pass over the final delays.
    TimingMismatch {
        /// What differed.
        detail: String,
    },
    /// The final placement violates setup or capture timing — the
    /// resiliency window is not legal.
    WindowViolation {
        /// `"setup"` or `"capture"`.
        kind: &'static str,
        /// The violating node's name.
        node: String,
    },
    /// A statistical certificate's analytic timing yield disagrees with
    /// the verifier's independent Monte Carlo estimate beyond the
    /// sampling tolerance — the canonical-form engine mis-models the
    /// delay distribution.
    YieldMismatch {
        /// The sink's name.
        sink: String,
        /// The yield the analytic engine claims.
        analytic: f64,
        /// The verifier's Monte Carlo estimate.
        monte_carlo: f64,
        /// The acceptance half-width (`mc_tolerance`).
        tolerance: f64,
    },
    /// A min-cost-flow solution fails its own certificate: capacity,
    /// conservation, cost accounting, or complementary slackness.
    FlowCertificate {
        /// What failed.
        detail: String,
    },
    /// A warm-started flow solve diverged from the cold-solve contract:
    /// its solution failed independent certification, or its objective
    /// differs from the cold objective on the same instance. The warm
    /// cache must be discarded and the instance re-solved cold.
    WarmStartMismatch {
        /// What diverged (certification failure or objective delta).
        detail: String,
    },
    /// The retimed netlist computed a different output than the
    /// original under random stimulus.
    NotEquivalent {
        /// First cycle at which the outputs diverged.
        cycle: usize,
    },
    /// The verifier itself could not run (STA or netlist failure while
    /// re-deriving the certificate inputs).
    Internal(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::IllegalCut { detail } => {
                write!(f, "illegal cut: {detail}")
            }
            VerifyError::LabelInfeasible { violated } => {
                write!(f, "retiming labels infeasible: {violated}")
            }
            VerifyError::ObjectiveMismatch {
                reported,
                recomputed,
            } => write!(
                f,
                "objective mismatch: certificate claims {reported}, labels recompute to \
                 {recomputed} (scaled units)"
            ),
            VerifyError::Suboptimal {
                certificate,
                reference,
            } => write!(
                f,
                "suboptimal certificate: cut achieves {certificate}, reference solver \
                 achieves {reference} (scaled units)"
            ),
            VerifyError::EdlFlagMismatch {
                sink,
                claimed,
                recomputed,
            } => write!(
                f,
                "EDL flag mismatch at sink {sink}: certificate claims \
                 error_detecting={claimed}, fresh timing recomputes {recomputed}"
            ),
            VerifyError::CutSetInconsistent { sink } => write!(
                f,
                "cut-set inconsistency at target {sink}: every gate of g(t) was retimed \
                 through, yet the sink still times inside the resiliency window"
            ),
            VerifyError::AreaMismatch {
                field,
                claimed,
                recomputed,
            } => write!(
                f,
                "area mismatch in {field}: certificate claims {claimed}, recount gives \
                 {recomputed}"
            ),
            VerifyError::TimingMismatch { detail } => {
                write!(f, "timing mismatch: {detail}")
            }
            VerifyError::WindowViolation { kind, node } => {
                write!(f, "resiliency-window violation: {kind} fails at {node}")
            }
            VerifyError::YieldMismatch {
                sink,
                analytic,
                monte_carlo,
                tolerance,
            } => write!(
                f,
                "timing-yield mismatch at sink {sink}: analytic engine claims {analytic:.6}, \
                 Monte Carlo estimates {monte_carlo:.6} (tolerance ±{tolerance:.6})"
            ),
            VerifyError::FlowCertificate { detail } => {
                write!(f, "flow certificate failed: {detail}")
            }
            VerifyError::WarmStartMismatch { detail } => {
                write!(f, "warm-start mismatch: {detail}")
            }
            VerifyError::NotEquivalent { cycle } => write!(
                f,
                "functional mismatch: retimed netlist diverges from the original at \
                 cycle {cycle}"
            ),
            VerifyError::Internal(msg) => write!(f, "verifier could not run: {msg}"),
        }
    }
}

impl std::error::Error for VerifyError {}
