//! Plain Monte Carlo timing-yield estimation — the verifier's
//! *independent* cross-check of the analytic statistical engine.
//!
//! Deliberately shares **no** propagation code with `retime-stat`: no
//! canonical forms, no Clark max, no normal-CDF kernel. Each sample
//! draws one die-wide global variable, one independent local variable
//! per node, and one clock-jitter variable, instantiates every gate
//! delay as the plain scalar `m + g·G + r·X_v`, propagates arrivals
//! with ordinary `f64::max`/`+` over the latch graph (slave relaunches
//! included), and counts the fraction of samples in which each sink
//! meets the jittered capture edge `Π + σ_c·Z`. If the canonical
//! machinery mis-models anything — a wrong correlation split, a broken
//! Clark moment, a mis-mirrored fold — the sampled yields drift away
//! from the analytic ones and the certificate check fails.
//!
//! With all sigmas zero every sample is the nominal circuit, so the
//! estimate degenerates to the same `0`/`1` step (with the shared
//! `1e-9` comparison tolerance) the analytic side reports.

use retime_netlist::{CloudEdge, CombCloud, Cut, NodeId};
use retime_sta::{DelayModel, NodeDelays, TwoPhaseClock};

/// Comparison tolerance against the capture edge, identical to the
/// deterministic and analytic engines so the sigma→0 step agrees
/// bitwise.
const EPS: f64 = 1e-9;

/// Result of a Monte Carlo yield run.
#[derive(Debug, Clone, PartialEq)]
pub struct McYield {
    /// Estimated per-sink timing yield, aligned with `cloud.sinks()`.
    pub yields: Vec<f64>,
    /// Samples drawn.
    pub samples: usize,
}

/// The acceptance half-width for comparing an analytic yield `y` against
/// a Monte Carlo estimate over `n` samples: one percentage point of
/// model tolerance, three binomial standard errors, and a structural
/// `0.2·y(1−y)` allowance for the first-order model's reconvergence
/// bias.
///
/// The structural term is there because the canonical form lumps every
/// local contribution into one aggregate sigma, so Clark's max sees
/// shared path prefixes as less correlated than they are and the
/// analytic CDF drifts from the sampled one — an error proportional to
/// the CDF slope, largest in the distribution body and vanishing in
/// the tails. At the near-one yield targets that drive EDL decisions
/// the term is negligible (`≈ 0.0003` at `y = 0.9987`), so the
/// certificate stays one-percent-tight exactly where the outcome
/// depends on the number.
pub fn mc_tolerance(y: f64, n: usize) -> f64 {
    let p = y.clamp(0.0, 1.0) * (1.0 - y.clamp(0.0, 1.0));
    0.01 + 3.0 * (p / n.max(1) as f64).sqrt() + 0.2 * p
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in the open interval (0, 1) — never exactly 0, so `ln` below
/// is always finite.
fn unit(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 0.5) / 9_007_199_254_740_992.0
}

/// One standard normal by the Box–Muller transform (independent draws;
/// the discarded sine partner keeps the stream position deterministic
/// per call).
fn normal(state: &mut u64) -> f64 {
    let u1 = unit(state);
    let u2 = unit(state);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Estimates per-sink timing yield at the clock period by plain Monte
/// Carlo over the first-order delay model baked into statistical
/// [`NodeDelays`].
///
/// # Panics
/// Panics if `delays` was not built in statistical mode.
pub fn mc_yields(
    cloud: &CombCloud,
    delays: &NodeDelays,
    clock: TwoPhaseClock,
    cut: &Cut,
    samples: usize,
    seed: u64,
) -> McYield {
    let DelayModel::Statistical(params) = delays.model() else {
        panic!(
            "Monte Carlo yield wants statistical delay tables, got {}",
            delays.model()
        );
    };
    let pi = clock.period();
    let clock_sigma = params.clock_sigma_frac() * pi;
    let open = clock.slave_open() + delays.latch_ckq();
    let dq = delays.latch_dq();
    let launch = delays.launch();
    let n = cloud.len();

    // Per-node nominal and sigma split, pre-fetched once.
    let nominal: Vec<f64> = (0..n).map(|i| delays.arc(NodeId(i as u32)).max()).collect();
    let sigma: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let s = delays.sigma(NodeId(i as u32));
            (s.global, s.local)
        })
        .collect();

    let mut state = seed ^ 0x4D43_5EED_u64; // distinct stream per purpose
    let mut pass = vec![0usize; cloud.sinks().len()];
    let mut arr = vec![0.0f64; n];
    for _ in 0..samples {
        let g = normal(&mut state);
        let z = normal(&mut state);
        // One local variable per node, drawn in index order so the
        // stream is deterministic and independent of graph shape.
        let relaunch = |a: f64| open.max(a + dq);
        for i in 0..n {
            let x = normal(&mut state);
            // Sample every node's delay up front; sources ignore theirs.
            arr[i] = nominal[i] + sigma[i].0 * g + sigma[i].1 * x;
        }
        let delay = arr.clone();
        for &s in cloud.sources() {
            arr[s.index()] = if cut.is_moved(s) {
                launch
            } else {
                relaunch(launch)
            };
        }
        for &v in cloud.topo() {
            let node = cloud.node(v);
            if node.is_source() {
                continue;
            }
            let mut input = f64::NEG_INFINITY;
            for &u in &node.fanin {
                let mut a = arr[u.index()];
                if cut.edge_latched(CloudEdge { from: u, to: v }) {
                    a = relaunch(a);
                }
                input = input.max(a);
            }
            if !input.is_finite() {
                input = 0.0;
            }
            arr[v.index()] = if node.is_gate() {
                input + delay[v.index()]
            } else {
                input
            };
        }
        let capture = pi + clock_sigma * z;
        for (k, &t) in cloud.sinks().iter().enumerate() {
            if arr[t.index()] <= capture + EPS {
                pass[k] += 1;
            }
        }
    }
    McYield {
        yields: pass
            .iter()
            .map(|&p| p as f64 / samples.max(1) as f64)
            .collect(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retime_liberty::Library;
    use retime_netlist::bench;
    use retime_sta::StatParams;

    fn setup(model: DelayModel) -> (CombCloud, NodeDelays) {
        let n = bench::parse(
            "m",
            "\
INPUT(a)
INPUT(b)
OUTPUT(z)
g1 = NAND(a, b)
g2 = NOT(g1)
g3 = NAND(g2, b)
g4 = NOT(g3)
z = NAND(g4, a)
",
        )
        .unwrap();
        let cloud = CombCloud::extract(&n).unwrap();
        let delays = NodeDelays::from_library(&cloud, &Library::fdsoi28(), model).unwrap();
        (cloud, delays)
    }

    #[test]
    fn sigma_zero_is_a_step_function() {
        let zero = DelayModel::Statistical(StatParams::new(0.0, 0.0, 0.9987, 1));
        let (cloud, delays) = setup(zero);
        let cut = Cut::initial(&cloud);
        let relaxed = mc_yields(
            &cloud,
            &delays,
            TwoPhaseClock::from_max_delay(10.0),
            &cut,
            64,
            7,
        );
        let tight = mc_yields(
            &cloud,
            &delays,
            TwoPhaseClock::from_max_delay(0.05),
            &cut,
            64,
            7,
        );
        assert!(relaxed.yields.iter().all(|&y| y == 1.0));
        assert!(tight.yields.iter().all(|&y| y == 0.0));
    }

    #[test]
    fn mc_is_seed_deterministic() {
        let model = DelayModel::Statistical(StatParams::DEFAULT);
        let (cloud, delays) = setup(model);
        let cut = Cut::initial(&cloud);
        let clock = TwoPhaseClock::from_max_delay(0.5);
        let a = mc_yields(&cloud, &delays, clock, &cut, 512, 42);
        let b = mc_yields(&cloud, &delays, clock, &cut, 512, 42);
        assert_eq!(a, b);
        let c = mc_yields(&cloud, &delays, clock, &cut, 512, 43);
        // A different seed draws different samples (overwhelmingly).
        assert!(a.samples == c.samples);
    }

    #[test]
    fn mc_matches_analytic_within_tolerance() {
        let model = DelayModel::Statistical(StatParams::new(0.05, 0.01, 0.9987, 9));
        let (cloud, delays) = setup(model);
        let cut = Cut::initial(&cloud);
        let clock = TwoPhaseClock::from_max_delay(0.55);
        let mc = mc_yields(&cloud, &delays, clock, &cut, 8192, 0xABCD);
        let (_, analytic) = retime_retime::stat_cut_summary(&cloud, &delays, clock, &cut);
        for (i, (&m, &a)) in mc.yields.iter().zip(&analytic.yields).enumerate() {
            let tol = mc_tolerance(a, mc.samples);
            assert!(
                (m - a).abs() <= tol,
                "sink {i}: MC {m} vs analytic {a} (tol {tol})"
            );
        }
    }

    #[test]
    fn normal_moments_sane() {
        let mut state = 123u64;
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = normal(&mut state);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "Monte Carlo yield wants statistical delay tables")]
    fn rejects_deterministic_tables() {
        let (cloud, delays) = setup(DelayModel::GateBased);
        let _ = mc_yields(
            &cloud,
            &delays,
            TwoPhaseClock::from_max_delay(0.5),
            &Cut::initial(&cloud),
            8,
            1,
        );
    }
}
