//! The retiming-certificate checker.
//!
//! [`verify_certificate`] takes a finished flow result (base, G-RAR, or
//! virtual-library) and re-derives everything it claims from scratch:
//! the region bounds and target cut-sets come from a fresh STA pass on
//! the *original* library delays, the ILP is rebuilt and the labels
//! checked against it, timing and EDL typing are recomputed from the
//! outcome's final (legalized) delays, the area bill is recounted
//! against the library, and the retimed netlist is simulated against the
//! original. For G-RAR — whose movement penalty is a pure tie-break —
//! the checker additionally re-solves the problem with the slow
//! reference engine and demands objective equality, certifying
//! optimality, not just feasibility.
//!
//! Soundness across flows: the virtual-library flow only *tightens*
//! retiming regions (Free → Forbidden when freezing cones, Free →
//! Mandatory when forcing targets), so every flow's cut must satisfy the
//! base region bounds the checker rebuilds — ILP feasibility is checked
//! for all three flows, optimality for G-RAR only.

use retime_core::{classify_many, IlpFormulation};
use retime_engine::{FlowContext, PhaseTimings, Pipeline, Stage};
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::{CombCloud, Netlist, NodeId, NodeKind};
use retime_retime::{
    stat_cut_summary, AreaModel, Regions, RetimeOutcome, RetimingProblem, RetimingSolution,
    SolverEngine, BREADTH_SCALE,
};
use retime_sim::equivalent;
use retime_sta::{CutTiming, DelayModel, SinkClass, TimingAnalysis, TwoPhaseClock};

use crate::error::VerifyError;

/// Which flow produced the certificate under check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// Resiliency-unaware base retiming.
    Base,
    /// G-RAR — the only flow whose objective the checker certifies
    /// optimal (base and VL bias the solve with the commercial movement
    /// penalty and tightened regions).
    Grar,
    /// A virtual-library variant (EVL/NVL/RVL).
    Vl,
}

impl FlowKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Base => "base",
            FlowKind::Grar => "grar",
            FlowKind::Vl => "vl",
        }
    }
}

/// Everything the checker re-derives a certificate from: the circuit and
/// the run parameters the flow was given. Deliberately *not* the flow's
/// internal state — the whole point is an independent reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct VerifySetup<'a> {
    /// The original (pre-retiming) netlist.
    pub netlist: &'a Netlist,
    /// The combinational cloud the flow retimed.
    pub cloud: &'a CombCloud,
    /// The cell library.
    pub lib: &'a Library,
    /// The two-phase clock the flow targeted.
    pub clock: TwoPhaseClock,
    /// The delay model the flow classified with.
    pub model: DelayModel,
    /// The EDL area overhead `c`.
    pub overhead: EdlOverhead,
}

/// Knobs of a verification run.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Random stimulus cycles for the functional-equivalence check
    /// (`0` skips simulation).
    pub cycles: usize,
    /// Stimulus seed.
    pub seed: u64,
    /// Worker threads for the classification fan-out (`0` = auto).
    pub threads: usize,
    /// Monte Carlo samples for the statistical-yield cross-check (`0`
    /// skips it; ignored outside `DelayModel::Statistical`).
    pub mc_samples: usize,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            cycles: 256,
            seed: 0x5EED_CE27,
            threads: 0,
            mc_samples: 4096,
        }
    }
}

/// What a successful verification established.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Target masters found by the checker's own classification.
    pub targets: usize,
    /// Targets whose whole cut-set the certificate retimed through
    /// (each independently confirmed non-error-detecting).
    pub targets_saved: usize,
    /// Stimulus cycles simulated without divergence.
    pub cycles: usize,
    /// Wall-clock of the verification, under [`Stage::Verify`], plus
    /// `verify_checks` / `verify_targets` / `verify_cycles` counters —
    /// merge into the flow's own [`PhaseTimings`] to publish.
    pub phases: PhaseTimings,
}

#[derive(Default)]
struct CheckState {
    problem: Option<RetimingProblem>,
    full: Vec<i64>,
    /// `(pseudo flow node, sink idx)` per target master, in sink order.
    pseudos: Vec<(usize, usize)>,
    /// Sink indices classified never-error-detecting.
    never_ed: Vec<usize>,
    checks: u64,
}

/// Independently re-validates a finished flow result. See the module
/// docs for what is re-derived and from where.
///
/// # Errors
/// Returns the first failed check as a diagnosis-specific
/// [`VerifyError`].
pub fn verify_certificate(
    setup: &VerifySetup<'_>,
    kind: FlowKind,
    outcome: &RetimeOutcome,
    opts: &VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    let cloud = setup.cloud;
    let mut ctx = FlowContext::new(CheckState::default());

    Pipeline::<FlowContext<CheckState>, VerifyError>::new()
        // Labels: rebuild regions + targets from scratch, check the cut
        // and its retiming labels against the Eq. (10) ILP, and (G-RAR)
        // re-solve with the reference engine for optimality.
        .stage(Stage::Verify, |ctx| {
            let _span = retime_trace::span("verify_labels");
            let sta = TimingAnalysis::new(cloud, setup.lib, setup.clock, setup.model)
                .map_err(internal)?;
            let regions = Regions::compute(&sta).map_err(internal)?;
            let mut problem = RetimingProblem::build(cloud, &regions);
            let targets: Vec<(usize, NodeId)> = cloud
                .sinks()
                .iter()
                .enumerate()
                .filter(|&(_, &t)| matches!(cloud.node(t).kind, NodeKind::Sink { master: Some(_) }))
                .map(|(i, &t)| (i, t))
                .collect();
            let sinks: Vec<NodeId> = targets.iter().map(|&(_, t)| t).collect();
            let classified = classify_many(&sta, &sinks, opts.threads);
            let c_scaled = (setup.overhead.value() * BREADTH_SCALE as f64).round() as i64;
            for (&(sink_idx, _), (class, g)) in targets.iter().zip(classified) {
                match class {
                    SinkClass::Target => {
                        let p = problem.add_pseudo_target(&g, c_scaled);
                        ctx.data.pseudos.push((p, sink_idx));
                    }
                    SinkClass::NeverErrorDetecting => ctx.data.never_ed.push(sink_idx),
                    SinkClass::AlwaysErrorDetecting => {}
                }
            }

            outcome
                .cut
                .validate(cloud)
                .map_err(|e| VerifyError::IllegalCut {
                    detail: e.to_string(),
                })?;
            if !outcome.cut.check_paths(cloud) {
                return Err(VerifyError::IllegalCut {
                    detail: "a source→sink path does not cross exactly one slave latch".into(),
                });
            }
            let moved: Vec<bool> = (0..cloud.len())
                .map(|i| outcome.cut.is_moved(NodeId(i as u32)))
                .collect();
            let full = problem.full_assignment_for(&moved);
            let ilp = IlpFormulation::from_problem(&problem);
            if !ilp.is_feasible(&full) {
                return Err(VerifyError::LabelInfeasible {
                    violated: first_violation(&ilp, &full),
                });
            }
            ctx.data.checks += 3;

            if kind == FlowKind::Grar {
                let achieved = problem.objective_scaled_for(&moved);
                let reference = problem
                    .solve(SolverEngine::ReferenceSsp)
                    .map_err(internal)?;
                if reference.objective_scaled < achieved {
                    return Err(VerifyError::Suboptimal {
                        certificate: achieved,
                        reference: reference.objective_scaled,
                    });
                }
                if reference.objective_scaled > achieved {
                    return Err(internal(format!(
                        "reference solver returned {} but the certificate achieves {achieved}",
                        reference.objective_scaled
                    )));
                }
                ctx.data.checks += 1;
            }
            ctx.data.full = full;
            ctx.data.problem = Some(problem);
            Ok(())
        })
        // Timing + EDL typing: a from-scratch STA pass over the final
        // (legalized) delays must reproduce the stored CutTiming exactly,
        // the window must be legal, the EDL flags must match the
        // arrival-based rule, and every reclaimed target must really
        // land outside the window.
        .stage(Stage::Verify, |ctx| {
            let _span = retime_trace::span("verify_timing");
            let fresh_sta =
                TimingAnalysis::with_delays(cloud, outcome.final_delays.clone(), setup.clock);
            let fresh = fresh_sta.cut_timing(&outcome.cut);
            if let Some(&v) = fresh.setup_violations.first() {
                return Err(VerifyError::WindowViolation {
                    kind: "setup",
                    node: cloud.node(v).name.clone(),
                });
            }
            if let Some(&v) = fresh.capture_violations.first() {
                return Err(VerifyError::WindowViolation {
                    kind: "capture",
                    node: cloud.node(v).name.clone(),
                });
            }
            if fresh != outcome.timing {
                return Err(VerifyError::TimingMismatch {
                    detail: timing_diff(cloud, &outcome.timing, &fresh),
                });
            }
            // EDL typing. Deterministic modes re-apply the arrival-based
            // rule; statistical mode re-runs the shared analytic funnel
            // over the final delays (exact replay — must reproduce both
            // the flags and the claimed `StatSummary` bit-for-bit) and
            // then cross-checks the analytic yields against an
            // independent plain Monte Carlo that shares no propagation
            // code with the canonical-form engine.
            let area_model = AreaModel::new(setup.lib, setup.overhead);
            let stat_mode = matches!(setup.model, DelayModel::Statistical(_));
            let flags = if stat_mode {
                let (flags, summary) =
                    stat_cut_summary(cloud, &outcome.final_delays, setup.clock, &outcome.cut);
                match &outcome.stat {
                    Some(claimed) if *claimed == summary => {}
                    Some(_) => {
                        return Err(VerifyError::TimingMismatch {
                            detail: "statistical summary differs from an exact replay over the \
                                     final delays"
                                .into(),
                        })
                    }
                    None => {
                        return Err(VerifyError::TimingMismatch {
                            detail: "statistical flow produced no StatSummary".into(),
                        })
                    }
                }
                if opts.mc_samples > 0 {
                    let mc = crate::mc::mc_yields(
                        cloud,
                        &outcome.final_delays,
                        setup.clock,
                        &outcome.cut,
                        opts.mc_samples,
                        opts.seed,
                    );
                    for (i, (&sampled, &analytic)) in
                        mc.yields.iter().zip(&summary.yields).enumerate()
                    {
                        let tolerance = crate::mc::mc_tolerance(analytic, mc.samples);
                        if (sampled - analytic).abs() > tolerance {
                            return Err(VerifyError::YieldMismatch {
                                sink: cloud.node(cloud.sinks()[i]).name.clone(),
                                analytic,
                                monte_carlo: sampled,
                                tolerance,
                            });
                        }
                    }
                    ctx.data.checks += 1;
                }
                ctx.data.checks += 1;
                flags
            } else {
                if outcome.stat.is_some() {
                    return Err(VerifyError::TimingMismatch {
                        detail: "deterministic flow carries a StatSummary".into(),
                    });
                }
                area_model.ed_flags(cloud, &fresh)
            };
            if flags.len() != outcome.ed_sinks.len() {
                return Err(internal(format!(
                    "certificate carries {} EDL flags for {} sinks",
                    outcome.ed_sinks.len(),
                    flags.len()
                )));
            }
            if let Some(i) = (0..flags.len()).find(|&i| flags[i] != outcome.ed_sinks[i]) {
                return Err(VerifyError::EdlFlagMismatch {
                    sink: cloud.node(cloud.sinks()[i]).name.clone(),
                    claimed: outcome.ed_sinks[i],
                    recomputed: flags[i],
                });
            }
            // Cut-set soundness: a target whose whole g(t) was retimed
            // through — and any never-ED sink — must time outside the
            // resiliency window. Legalization only speeds gates up, so
            // the classification's promise must survive it. In
            // statistical mode the window test is the yield-aware rule,
            // i.e. the recomputed stat flags, not the nominal arrivals.
            let inside_window = |i: usize| -> bool {
                if stat_mode {
                    flags[i]
                } else {
                    fresh.error_detecting[i]
                }
            };
            for &(p, sink_idx) in &ctx.data.pseudos {
                if ctx.data.full[p] == -1 && inside_window(sink_idx) {
                    return Err(VerifyError::CutSetInconsistent {
                        sink: cloud.node(cloud.sinks()[sink_idx]).name.clone(),
                    });
                }
            }
            for &sink_idx in &ctx.data.never_ed {
                if inside_window(sink_idx) {
                    return Err(VerifyError::CutSetInconsistent {
                        sink: cloud.node(cloud.sinks()[sink_idx]).name.clone(),
                    });
                }
            }
            ctx.data.checks += 4;
            Ok(())
        })
        // Area: recount the sequential breakdown and the combinational
        // bill against the library.
        .stage(Stage::Verify, |ctx| {
            let _span = retime_trace::span("verify_area");
            let area_model = AreaModel::new(setup.lib, setup.overhead);
            let seq = area_model.sequential(cloud, &outcome.cut, &outcome.ed_sinks);
            let counts: [(&'static str, usize, usize); 3] = [
                ("slaves", outcome.seq.slaves, seq.slaves),
                ("masters", outcome.seq.masters, seq.masters),
                ("edl", outcome.seq.edl, seq.edl),
            ];
            for (field, claimed, recomputed) in counts {
                if claimed != recomputed {
                    return Err(VerifyError::AreaMismatch {
                        field,
                        claimed: claimed as f64,
                        recomputed: recomputed as f64,
                    });
                }
            }
            let comb =
                area_model.combinational(cloud).map_err(internal)? + outcome.legalize.area_penalty;
            let figures: [(&'static str, f64, f64); 5] = [
                ("slave_area", outcome.seq.slave_area, seq.slave_area),
                ("master_area", outcome.seq.master_area, seq.master_area),
                ("edl_area", outcome.seq.edl_area, seq.edl_area),
                ("comb_area", outcome.comb_area, comb),
                ("total_area", outcome.total_area, comb + seq.total()),
            ];
            for (field, claimed, recomputed) in figures {
                if (claimed - recomputed).abs() > 1e-9 {
                    return Err(VerifyError::AreaMismatch {
                        field,
                        claimed,
                        recomputed,
                    });
                }
            }
            ctx.data.checks += 8;
            Ok(())
        })
        // Functional equivalence: the retimed netlist must compute the
        // same cycle-level outputs as the original under random stimulus.
        .stage(Stage::Verify, |ctx| {
            let _span = retime_trace::span("verify_equivalence");
            if opts.cycles == 0 {
                return Ok(());
            }
            let retimed =
                outcome
                    .cut
                    .apply(cloud, setup.netlist)
                    .map_err(|e| VerifyError::IllegalCut {
                        detail: e.to_string(),
                    })?;
            match equivalent(setup.netlist, &retimed, opts.cycles, opts.seed).map_err(internal)? {
                Ok(()) => {}
                Err(cycle) => return Err(VerifyError::NotEquivalent { cycle }),
            }
            ctx.data.checks += 1;
            Ok(())
        })
        .run(&mut ctx)?;

    let (state, mut phases) = ctx.into_parts();
    let targets_saved = state
        .pseudos
        .iter()
        .filter(|&&(p, _)| state.full[p] == -1)
        .count();
    phases.count("verify_checks", state.checks);
    phases.count("verify_targets", state.pseudos.len() as u64);
    phases.count(
        "verify_cycles",
        if opts.cycles == 0 {
            0
        } else {
            opts.cycles as u64
        },
    );
    Ok(VerifyReport {
        targets: state.pseudos.len(),
        targets_saved,
        cycles: opts.cycles,
        phases,
    })
}

/// Checks a raw [`RetimingSolution`] against its [`RetimingProblem`]:
/// label/cut agreement, ILP feasibility, objective accounting, and
/// optimality against the reference engine.
///
/// # Errors
/// Returns the first failed check as a diagnosis-specific
/// [`VerifyError`].
pub fn verify_retiming_solution(
    problem: &RetimingProblem,
    sol: &RetimingSolution,
) -> Result<(), VerifyError> {
    if sol.r.len() != problem.node_count() {
        return Err(internal(format!(
            "solution carries {} labels for {} flow nodes",
            sol.r.len(),
            problem.node_count()
        )));
    }
    let ilp = IlpFormulation::from_problem(problem);
    if !ilp.is_feasible(&sol.r) {
        return Err(VerifyError::LabelInfeasible {
            violated: first_violation(&ilp, &sol.r),
        });
    }
    let moved: Vec<bool> = sol.r[..problem.cloud_len()]
        .iter()
        .map(|&x| x == -1)
        .collect();
    if let Some(v) =
        (0..problem.cloud_len()).find(|&v| sol.cut.is_moved(NodeId(v as u32)) != moved[v])
    {
        return Err(VerifyError::IllegalCut {
            detail: format!("cut disagrees with label r({v}) = {}", sol.r[v]),
        });
    }
    let recomputed = problem.objective_scaled_for(&moved);
    if recomputed != sol.objective_scaled {
        return Err(VerifyError::ObjectiveMismatch {
            reported: sol.objective_scaled,
            recomputed,
        });
    }
    let reference = problem
        .solve(SolverEngine::ReferenceSsp)
        .map_err(internal)?;
    if reference.objective_scaled < sol.objective_scaled {
        return Err(VerifyError::Suboptimal {
            certificate: sol.objective_scaled,
            reference: reference.objective_scaled,
        });
    }
    if reference.objective_scaled > sol.objective_scaled {
        return Err(internal(format!(
            "reference solver returned {} but the certificate achieves {}",
            reference.objective_scaled, sol.objective_scaled
        )));
    }
    Ok(())
}

fn internal(e: impl ToString) -> VerifyError {
    VerifyError::Internal(e.to_string())
}

/// Renders the first violated bound or difference constraint of an
/// infeasible assignment.
fn first_violation(ilp: &IlpFormulation, r: &[i64]) -> String {
    for (v, (&(lo, hi), &rv)) in ilp.bounds.iter().zip(r).enumerate() {
        if rv < lo || rv > hi {
            return format!("bound {lo} ≤ r({v}) ≤ {hi} violated by r({v}) = {rv}");
        }
    }
    for &(u, v, w) in &ilp.constraints {
        if r[u] - r[v] > w {
            return format!(
                "constraint r({u}) − r({v}) ≤ {w} violated by {} − {}",
                r[u], r[v]
            );
        }
    }
    "reported infeasible, yet no violated constraint found".into()
}

/// Renders what differs between the stored and recomputed cut timing.
fn timing_diff(cloud: &CombCloud, stored: &CutTiming, fresh: &CutTiming) -> String {
    for (i, &t) in cloud.sinks().iter().enumerate() {
        let name = &cloud.node(t).name;
        if stored.sink_arrivals.get(i) != fresh.sink_arrivals.get(i) {
            return format!(
                "arrival at {name}: stored {:?}, recomputed {:?}",
                stored.sink_arrivals.get(i),
                fresh.sink_arrivals.get(i)
            );
        }
        if stored.error_detecting.get(i) != fresh.error_detecting.get(i) {
            return format!(
                "error-detecting flag at {name}: stored {:?}, recomputed {:?}",
                stored.error_detecting.get(i),
                fresh.error_detecting.get(i)
            );
        }
    }
    "violation lists differ".into()
}
