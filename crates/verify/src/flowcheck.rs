//! Primal/dual certificate checking of min-cost-flow solutions.
//!
//! A [`FlowSolution`] carries everything needed to prove itself: the
//! per-arc flows are a *primal* certificate (capacity + conservation),
//! the node potentials a *dual* one. Optimality follows from
//! complementary slackness between the two — no re-solve required.

use retime_flow::{ArcId, FlowSolution, MinCostFlow};

use crate::error::VerifyError;

/// Checks that `sol` is a valid **optimal** solution of `p`:
///
/// 1. every arc flow lies in `[0, cap]`,
/// 2. net inflow at every node equals its demand,
/// 3. the reported cost equals `Σ cost(a) · flow(a)`,
/// 4. complementary slackness holds against the returned potentials
///    (`f < cap ⇒ y(to) − y(from) ≤ cost`, `f > 0 ⇒ y(to) − y(from) ≥
///    cost`), which certifies optimality.
///
/// # Errors
/// Returns [`VerifyError::FlowCertificate`] naming the first failed
/// condition.
pub fn check_flow_solution(p: &MinCostFlow, sol: &FlowSolution) -> Result<(), VerifyError> {
    let fail = |detail: String| Err(VerifyError::FlowCertificate { detail });
    if sol.flows.len() != p.arc_count() {
        return fail(format!(
            "solution carries {} arc flows for {} arcs",
            sol.flows.len(),
            p.arc_count()
        ));
    }
    if sol.potentials.len() != p.node_count() {
        return fail(format!(
            "solution carries {} potentials for {} nodes",
            sol.potentials.len(),
            p.node_count()
        ));
    }
    let mut inflow = vec![0i64; p.node_count()];
    let mut cost = 0i64;
    for a in 0..p.arc_count() {
        let (from, to, cap, arc_cost) = p.arc_info(ArcId(a));
        let f = sol.flows[a];
        if f < 0 || f > cap {
            return fail(format!(
                "arc {a} ({from} → {to}) flow {f} outside [0, {cap}]"
            ));
        }
        inflow[to] += f;
        inflow[from] -= f;
        cost += f * arc_cost;
    }
    for (v, &net) in inflow.iter().enumerate() {
        if net != p.demand(v) {
            return fail(format!(
                "node {v} receives net flow {net} but demands {}",
                p.demand(v)
            ));
        }
    }
    if cost != sol.cost {
        return fail(format!(
            "reported cost {} differs from recomputed {cost}",
            sol.cost
        ));
    }
    for a in 0..p.arc_count() {
        let (from, to, cap, arc_cost) = p.arc_info(ArcId(a));
        let f = sol.flows[a];
        let dual_gain = sol.potentials[to] - sol.potentials[from];
        if f < cap && dual_gain > arc_cost {
            return fail(format!(
                "slack arc {a} ({from} → {to}) has dual gain {dual_gain} > cost {arc_cost}"
            ));
        }
        if f > 0 && dual_gain < arc_cost {
            return fail(format!(
                "used arc {a} ({from} → {to}) has dual gain {dual_gain} < cost {arc_cost}"
            ));
        }
    }
    Ok(())
}

/// Certifies a **warm-started** solution against the cold-solve
/// contract: `warm` must pass [`check_flow_solution`] on `p` (bounds,
/// conservation, cost accounting, complementary slackness — i.e. it is
/// a *proven optimal* solution, not merely a plausible one), and its
/// objective must equal `cold.cost`, the objective of an independent
/// cold solve of the same instance. Vertex solutions of a min-cost flow
/// are not unique, so the flows themselves may differ between equally
/// optimal bases; the objective may not.
///
/// # Errors
/// Returns [`VerifyError::WarmStartMismatch`] naming what diverged —
/// the caller must discard the warm cache and re-solve cold.
pub fn check_warm_solution(
    p: &MinCostFlow,
    warm: &FlowSolution,
    cold: &FlowSolution,
) -> Result<(), VerifyError> {
    check_flow_solution(p, warm).map_err(|e| VerifyError::WarmStartMismatch {
        detail: format!("warm solution failed certification: {e}"),
    })?;
    if warm.cost != cold.cost {
        return Err(VerifyError::WarmStartMismatch {
            detail: format!(
                "warm objective {} differs from cold objective {}",
                warm.cost, cold.cost
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> MinCostFlow {
        let mut p = MinCostFlow::new(4);
        p.add_arc(0, 1, 6, 1);
        p.add_arc(0, 2, 6, 4);
        p.add_arc(1, 3, 4, 1);
        p.add_arc(2, 3, 6, 1);
        p.set_demand(0, -6);
        p.set_demand(3, 6);
        p
    }

    #[test]
    fn accepts_every_engine_and_pivot_rule() {
        use retime_flow::PivotRuleKind;
        let p = diamond();
        check_flow_solution(&p, &p.solve().unwrap()).unwrap();
        check_flow_solution(&p, &p.solve_reference().unwrap()).unwrap();
        check_flow_solution(&p, &p.solve_network_simplex().unwrap()).unwrap();
        for rule in [
            PivotRuleKind::FirstEligible,
            PivotRuleKind::BlockSearch,
            PivotRuleKind::CandidateList,
        ] {
            check_flow_solution(&p, &p.solve_network_simplex_with(rule).unwrap()).unwrap();
        }
    }

    #[test]
    fn rejects_corrupted_flows() {
        let p = diamond();
        let mut sol = p.solve().unwrap();
        sol.flows[0] += 1; // breaks conservation at node 1
        let err = check_flow_solution(&p, &sol).unwrap_err();
        assert!(matches!(err, VerifyError::FlowCertificate { .. }), "{err}");
    }

    #[test]
    fn rejects_wrong_cost_and_suboptimal_routing() {
        let p = diamond();
        let mut sol = p.solve().unwrap();
        sol.cost += 1;
        assert!(check_flow_solution(&p, &sol).is_err());

        // Reroute 2 units over the expensive arc: conserving but no
        // longer slack-complementary with any correct dual.
        let mut sol = p.solve().unwrap();
        assert_eq!(sol.flows, vec![4, 2, 4, 2]);
        sol.flows = vec![2, 4, 2, 4];
        sol.cost = 2 + 16 + 2 + 4;
        let err = check_flow_solution(&p, &sol).unwrap_err();
        assert!(err.to_string().contains("dual gain"), "{err}");
    }

    #[test]
    fn warm_check_accepts_genuine_warm_solves() {
        use retime_flow::{ArcId, PivotRuleKind};
        let mut p = diamond();
        let mut basis = p.solve_cold_capture(PivotRuleKind::Auto).unwrap();
        p.set_cost(ArcId(1), 2);
        let (warm, _) = p.solve_warm(&mut basis, PivotRuleKind::Auto).unwrap();
        let cold = p.solve_network_simplex().unwrap();
        check_warm_solution(&p, &warm, &cold).unwrap();
    }

    #[test]
    fn warm_check_rejects_poisoned_potentials() {
        use retime_flow::PivotRuleKind;
        let p = diamond();
        let mut basis = p.solve_cold_capture(PivotRuleKind::Auto).unwrap();
        // Corrupt the cached dual certificate, then take the (verbatim)
        // warm hit: the independent check must refuse it.
        basis.potentials_mut()[0] += 1_000;
        let (warm, outcome) = p.solve_warm(&mut basis, PivotRuleKind::Auto).unwrap();
        assert_eq!(outcome, retime_flow::WarmOutcome::Hit);
        let cold = p.solve_network_simplex().unwrap();
        let err = check_warm_solution(&p, &warm, &cold).unwrap_err();
        assert!(
            matches!(err, VerifyError::WarmStartMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn warm_check_rejects_objective_divergence() {
        let p = diamond();
        let warm = p.solve_network_simplex().unwrap();
        // A warm solution that certifies fine still fails the contract
        // when the cold re-solve lands on a different objective.
        let mut cold = warm.clone();
        cold.cost += 1;
        let err = check_warm_solution(&p, &warm, &cold).unwrap_err();
        assert!(err.to_string().contains("differs from cold"), "{err}");
    }
}
