//! Independent certificate checking for retiming results.
//!
//! Every flow in this workspace (base retiming, G-RAR, the
//! virtual-library variants) emits a [`RetimeOutcome`] that *claims* a
//! lot: a legal slave-latch placement, an ILP-feasible set of retiming
//! labels, an arrival-consistent EDL assignment, a balanced area bill,
//! and — for G-RAR — an optimal objective. This crate re-validates
//! those claims from scratch, sharing as little machinery with the
//! flows as possible:
//!
//! * [`verify_certificate`] — the end-to-end checker: rebuilds regions,
//!   cut-sets, and the Eq. (10) ILP from a fresh STA pass, recomputes
//!   timing and EDL typing from the final delays, recounts the area
//!   against the library, re-solves G-RAR's flow problem with the
//!   deliberately-slow reference engine
//!   ([`MinCostFlow::solve_reference`]), and simulates the retimed
//!   netlist against the original under random stimulus.
//! * [`verify_retiming_solution`] — the same label/objective/optimality
//!   checks on a raw [`RetimingSolution`].
//! * [`check_flow_solution`] — primal/dual certificate checking of a
//!   min-cost-flow solution (capacity, conservation, cost,
//!   complementary slackness).
//! * [`check_warm_solution`] — the warm-start contract: a warm-started
//!   re-solve must pass [`check_flow_solution`] *and* match the cold
//!   objective, else [`VerifyError::WarmStartMismatch`].
//! * [`mc_yields`] — plain Monte Carlo timing-yield estimation over the
//!   statistical delay tables. Deliberately shares **no** propagation
//!   code with the analytic `retime-stat` engine; in statistical mode
//!   the checker demands the sampled yields agree with the analytic
//!   ones within [`mc_tolerance`], else
//!   [`VerifyError::YieldMismatch`].
//!
//! Failures are diagnosis-specific [`VerifyError`] variants, so a
//! corrupted label, a mistyped EDL flag, and a miscounted area each
//! report distinctly.
//!
//! The benchmark harness runs the checker on every flow of every table
//! when `RETIME_VERIFY=1` (see [`enabled`]), publishing its wall-clock
//! and counters through the shared `Stage::Verify` instrumentation.
//! Under `retime-trace`, each check stage additionally runs in its own
//! span (`verify_labels`, `verify_timing`, `verify_area`,
//! `verify_equivalence`) — tracing is observation-only.
//!
//! [`RetimeOutcome`]: retime_retime::RetimeOutcome
//! [`RetimingSolution`]: retime_retime::RetimingSolution
//! [`MinCostFlow::solve_reference`]: retime_flow::MinCostFlow::solve_reference

#![warn(missing_docs)]

pub mod certificate;
pub mod error;
pub mod flowcheck;
pub mod mc;

pub use certificate::{
    verify_certificate, verify_retiming_solution, FlowKind, VerifyOptions, VerifyReport,
    VerifySetup,
};
pub use error::VerifyError;
pub use flowcheck::{check_flow_solution, check_warm_solution};
pub use mc::{mc_tolerance, mc_yields, McYield};

/// Whether certificate verification was requested via the environment
/// (`RETIME_VERIFY=1`, `true`, or `on`).
pub fn enabled() -> bool {
    matches!(
        std::env::var("RETIME_VERIFY").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    )
}
