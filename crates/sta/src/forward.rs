//! Forward arrival-time propagation.

use retime_liberty::{DelayArc, Sense};
use retime_netlist::{CloudEdge, CombCloud, Cut};

use crate::clock::TwoPhaseClock;
use crate::model::NodeDelays;

/// Combines input arrivals through a gate, honouring unateness (the
/// "valid combinations of rise and fall delays" of Section VI-B):
///
/// * positive-unate: output rise ← input rise,
/// * negative-unate: output rise ← input fall,
/// * non-unate: output rise ← worst input transition.
pub(crate) fn through_gate(input: DelayArc, arc: DelayArc, sense: Sense) -> DelayArc {
    match sense {
        Sense::Positive => DelayArc {
            rise: input.rise + arc.rise,
            fall: input.fall + arc.fall,
        },
        Sense::Negative => DelayArc {
            rise: input.fall + arc.rise,
            fall: input.rise + arc.fall,
        },
        Sense::NonUnate => {
            let w = input.max();
            DelayArc {
                rise: w + arc.rise,
                fall: w + arc.fall,
            }
        }
    }
}

/// Element-wise max of two arcs (merging arrivals from different pins).
pub(crate) fn arc_max(a: DelayArc, b: DelayArc) -> DelayArc {
    DelayArc {
        rise: a.rise.max(b.rise),
        fall: a.fall.max(b.fall),
    }
}

/// The arrival at a slave latch's output given the arrival `input` at its
/// D pin: `max(φ1 + γ1 + d^{ck_q}, input + d^{d_q})` per transition —
/// the inner `max` of Eq. (5). Latches are non-inverting, so polarity is
/// preserved.
pub fn relaunch(input: DelayArc, clock: &TwoPhaseClock, delays: &NodeDelays) -> DelayArc {
    let open = clock.slave_open() + delays.latch_ckq();
    DelayArc {
        rise: open.max(input.rise + delays.latch_dq()),
        fall: open.max(input.fall + delays.latch_dq()),
    }
}

/// Computes the pure combinational arrival `D^f(v)` at every node output:
/// sources launch at the master clock-to-Q, no slave latch anywhere.
///
/// This is the quantity queried from the synthesis tool in Section VI-B
/// ("the latest arrival time of any fanout of u").
pub(crate) fn pure_arrivals(cloud: &CombCloud, delays: &NodeDelays) -> Vec<DelayArc> {
    let mut arr = vec![DelayArc::default(); cloud.len()];
    for &s in cloud.sources() {
        arr[s.index()] = DelayArc::symmetric(delays.launch());
    }
    propagate(cloud, delays, &mut arr, |_e, a| a)
}

/// Computes arrivals with slave latches at the positions of `cut`:
/// data crossing a latched edge is re-launched per [`relaunch`].
pub(crate) fn arrivals_with_cut(
    cloud: &CombCloud,
    delays: &NodeDelays,
    clock: &TwoPhaseClock,
    cut: &Cut,
) -> Vec<DelayArc> {
    let mut arr = vec![DelayArc::default(); cloud.len()];
    for &s in cloud.sources() {
        let launch = DelayArc::symmetric(delays.launch());
        arr[s.index()] = if cut.is_moved(s) {
            launch
        } else {
            // Slave at the source position: everything downstream sees the
            // re-launched value.
            relaunch(launch, clock, delays)
        };
    }
    propagate(cloud, delays, &mut arr, |e, a| {
        if cut.edge_latched(e) {
            relaunch(a, clock, delays)
        } else {
            a
        }
    })
}

/// Shared propagation core. `edge_fn` transforms the value crossing each
/// edge (identity for pure arrivals, [`relaunch`] on latched edges).
fn propagate(
    cloud: &CombCloud,
    delays: &NodeDelays,
    arr: &mut Vec<DelayArc>,
    edge_fn: impl Fn(CloudEdge, DelayArc) -> DelayArc,
) -> Vec<DelayArc> {
    for &v in cloud.topo() {
        let node = cloud.node(v);
        if node.is_source() {
            continue;
        }
        let mut input: Option<DelayArc> = None;
        for &u in &node.fanin {
            let via = edge_fn(CloudEdge { from: u, to: v }, arr[u.index()]);
            input = Some(match input {
                None => via,
                Some(acc) => arc_max(acc, via),
            });
        }
        let input = input.unwrap_or_default();
        arr[v.index()] = if node.is_gate() {
            through_gate(input, delays.arc(v), delays.sense(v))
        } else {
            // Sink: capture the driver's arrival unchanged.
            input
        };
    }
    std::mem::take(arr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DelayModel, NodeDelays};
    use retime_liberty::Library;
    use retime_netlist::{bench, CombCloud};

    fn setup() -> (CombCloud, NodeDelays, TwoPhaseClock) {
        let n = bench::parse(
            "f",
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\ng1 = NAND(a, b)\ng2 = NOT(g1)\nz = NAND(g2, b)\n",
        )
        .unwrap();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let delays = NodeDelays::from_library(&cloud, &lib, DelayModel::PathBased).unwrap();
        (cloud, delays, TwoPhaseClock::from_max_delay(0.5))
    }

    #[test]
    fn pure_arrival_monotone_along_paths() {
        let (cloud, delays, _) = setup();
        let arr = pure_arrivals(&cloud, &delays);
        for e in cloud.edges() {
            assert!(
                arr[e.to.index()].max() >= arr[e.from.index()].max() - 1e-12,
                "arrival must not decrease along {} -> {}",
                cloud.node(e.from).name,
                cloud.node(e.to).name
            );
        }
    }

    #[test]
    fn negative_unate_swaps_transitions() {
        let input = DelayArc {
            rise: 1.0,
            fall: 2.0,
        };
        let arc = DelayArc {
            rise: 0.1,
            fall: 0.2,
        };
        let out = through_gate(input, arc, Sense::Negative);
        // Output rise comes from input fall.
        assert!((out.rise - 2.1).abs() < 1e-12);
        assert!((out.fall - 1.2).abs() < 1e-12);
        let nu = through_gate(input, arc, Sense::NonUnate);
        assert!((nu.rise - 2.1).abs() < 1e-12);
        assert!((nu.fall - 2.2).abs() < 1e-12);
    }

    #[test]
    fn relaunch_floor_is_window_open() {
        let (_, delays, clock) = setup();
        let early = DelayArc::symmetric(0.0);
        let out = relaunch(early, &clock, &delays);
        assert!((out.rise - (clock.slave_open() + delays.latch_ckq())).abs() < 1e-12);
        // Late data flows through with the D-to-Q delay.
        let late = DelayArc::symmetric(clock.slave_open() + 1.0);
        let out = relaunch(late, &clock, &delays);
        assert!((out.fall - (late.fall + delays.latch_dq())).abs() < 1e-12);
    }

    #[test]
    fn initial_cut_arrival_exceeds_pure() {
        let (cloud, delays, clock) = setup();
        let cut = Cut::initial(&cloud);
        let pure = pure_arrivals(&cloud, &delays);
        let cutted = arrivals_with_cut(&cloud, &delays, &clock, &cut);
        for &t in cloud.sinks() {
            assert!(cutted[t.index()].max() >= pure[t.index()].max());
        }
    }

    #[test]
    fn moving_latches_forward_changes_arrival() {
        let (cloud, delays, clock) = setup();
        let mut cut = Cut::initial(&cloud);
        // Fully retime the cone of g1 forward.
        for name in ["a", "b", "g1"] {
            cut.set_moved(cloud.find(name).unwrap(), true);
        }
        cut.validate(&cloud).unwrap();
        let arr = arrivals_with_cut(&cloud, &delays, &clock, &cut);
        // Arrival at g1 is now pure (no latch crossed yet).
        let pure = pure_arrivals(&cloud, &delays);
        let g1 = cloud.find("g1").unwrap();
        assert_eq!(arr[g1.index()].max(), pure[g1.index()].max());
    }
}
