//! Per-endpoint backward delay analysis: the paper's `D^b(v, t)`.

use retime_liberty::{DelayArc, Sense};
use retime_netlist::{CombCloud, NodeId};

use crate::forward::arc_max;
use crate::model::NodeDelays;

/// Result of a backward pass from one sink `t`.
///
/// For every node `v` in the fan-in cone of `t` (excluding `t` itself for
/// `from_output`):
///
/// * `from_output(v)` — the paper's `D^b(v, t)`: worst delay from a
///   transition at the **output** of `v` to the input of `t`, per output
///   polarity at `v`,
/// * `through(v)` — worst delay from a transition at the **inputs** of `v`
///   through `v` to `t` (the `d(v) + D^b(v, t)` term of Eq. 5 with valid
///   rise/fall pairing), per input polarity at `v`.
#[derive(Debug, Clone, PartialEq)]
pub struct BackwardPass {
    sink: NodeId,
    from_output: Vec<Option<DelayArc>>,
    through: Vec<Option<DelayArc>>,
}

impl BackwardPass {
    /// Runs the backward pass from sink `t`.
    ///
    /// # Panics
    /// Panics if `t` is not a sink of the cloud.
    pub fn run(cloud: &CombCloud, delays: &NodeDelays, t: NodeId) -> BackwardPass {
        assert!(cloud.node(t).is_sink(), "{t} is not a sink");
        let n = cloud.len();
        let mut from_output: Vec<Option<DelayArc>> = vec![None; n];
        let mut through: Vec<Option<DelayArc>> = vec![None; n];
        // The sink itself: a latch placed directly on the edge into t has
        // no further gate delay.
        through[t.index()] = Some(DelayArc::default());

        // Membership in the cone (computed cheaply during the reverse
        // topological sweep: a node is in the cone if any fanout is).
        let mut in_cone = vec![false; n];
        in_cone[t.index()] = true;

        for &v in cloud.topo().iter().rev() {
            if v == t {
                continue;
            }
            let node = cloud.node(v);
            let mut best: Option<DelayArc> = None;
            for &w in &node.fanout {
                if !in_cone[w.index()] {
                    continue;
                }
                if let Some(thr) = through[w.index()] {
                    best = Some(match best {
                        None => thr,
                        Some(acc) => arc_max(acc, thr),
                    });
                }
            }
            if let Some(fo) = best {
                in_cone[v.index()] = true;
                from_output[v.index()] = Some(fo);
                if node.is_gate() {
                    through[v.index()] =
                        Some(backward_through_gate(fo, delays.arc(v), delays.sense(v)));
                }
            }
        }
        BackwardPass {
            sink: t,
            from_output,
            through,
        }
    }

    /// The sink this pass was run from.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// `D^b(v, t)` per output polarity of `v`; `None` when `v` is not in
    /// the fan-in cone of the sink.
    pub fn from_output(&self, v: NodeId) -> Option<DelayArc> {
        self.from_output[v.index()]
    }

    /// Scalar `D^b(v, t)` (worst polarity).
    pub fn db(&self, v: NodeId) -> Option<f64> {
        self.from_output[v.index()].map(DelayArc::max)
    }

    /// Delay from `v`'s inputs through `v` to the sink, per input polarity.
    /// Defined for gate nodes in the cone and for the sink itself (zero).
    pub fn through(&self, v: NodeId) -> Option<DelayArc> {
        self.through[v.index()]
    }

    /// Whether `v` lies in the fan-in cone of the sink.
    pub fn in_cone(&self, v: NodeId) -> bool {
        v == self.sink || self.from_output[v.index()].is_some()
    }
}

/// Backward counterpart of [`crate::forward::through_gate`]: given the
/// per-output-polarity delay-to-sink `fo` at a gate's output, produce the
/// per-input-polarity delay-to-sink through the gate.
fn backward_through_gate(fo: DelayArc, arc: DelayArc, sense: Sense) -> DelayArc {
    match sense {
        // Input rise -> output rise (delay arc.rise), then fo.rise onward.
        Sense::Positive => DelayArc {
            rise: arc.rise + fo.rise,
            fall: arc.fall + fo.fall,
        },
        // Input rise -> output fall.
        Sense::Negative => DelayArc {
            rise: arc.fall + fo.fall,
            fall: arc.rise + fo.rise,
        },
        // Input transition may cause either output transition.
        Sense::NonUnate => {
            let w = (arc.rise + fo.rise).max(arc.fall + fo.fall);
            DelayArc::symmetric(w)
        }
    }
}

/// Worst backward delay to **any** sink, per node (a single reverse sweep).
/// Used for the `V_m` region test `∃t: D^b(v,t) > φ2 + γ2 + φ1`.
pub(crate) fn db_to_any_sink(cloud: &CombCloud, delays: &NodeDelays) -> Vec<Option<DelayArc>> {
    let n = cloud.len();
    let mut from_output: Vec<Option<DelayArc>> = vec![None; n];
    let mut through: Vec<Option<DelayArc>> = vec![None; n];
    for &t in cloud.sinks() {
        through[t.index()] = Some(DelayArc::default());
    }
    for &v in cloud.topo().iter().rev() {
        let node = cloud.node(v);
        if node.is_sink() {
            continue;
        }
        let mut best: Option<DelayArc> = None;
        for &w in &node.fanout {
            if let Some(thr) = through[w.index()] {
                best = Some(match best {
                    None => thr,
                    Some(acc) => arc_max(acc, thr),
                });
            }
        }
        if let Some(fo) = best {
            from_output[v.index()] = Some(fo);
            if node.is_gate() {
                through[v.index()] =
                    Some(backward_through_gate(fo, delays.arc(v), delays.sense(v)));
            }
        }
    }
    from_output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DelayModel, NodeDelays};
    use retime_liberty::Library;
    use retime_netlist::{bench, CombCloud};

    fn setup() -> (CombCloud, NodeDelays) {
        let n = bench::parse(
            "b",
            "\
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
g1 = NAND(a, b)
g2 = NOT(g1)
y = NAND(g2, b)
z = BUFF(a)
",
        )
        .unwrap();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let delays = NodeDelays::from_library(&cloud, &lib, DelayModel::PathBased).unwrap();
        (cloud, delays)
    }

    #[test]
    fn cone_membership() {
        let (cloud, delays) = setup();
        let y_sink = cloud
            .sinks()
            .iter()
            .copied()
            .find(|&t| cloud.node(t).name.starts_with("y"))
            .unwrap();
        let bp = BackwardPass::run(&cloud, &delays, y_sink);
        assert!(bp.in_cone(cloud.find("g1").unwrap()));
        assert!(bp.in_cone(cloud.find("a").unwrap()));
        // z's buffer is not in y's cone.
        assert!(!bp.in_cone(cloud.find("z").unwrap()));
        assert_eq!(bp.db(cloud.find("z").unwrap()), None);
    }

    #[test]
    fn db_decreases_toward_sink() {
        let (cloud, delays) = setup();
        let y_sink = cloud
            .sinks()
            .iter()
            .copied()
            .find(|&t| cloud.node(t).name.starts_with("y"))
            .unwrap();
        let bp = BackwardPass::run(&cloud, &delays, y_sink);
        let a = bp.db(cloud.find("a").unwrap()).unwrap();
        let g1 = bp.db(cloud.find("g1").unwrap()).unwrap();
        let g2 = bp.db(cloud.find("g2").unwrap()).unwrap();
        let y = bp.db(cloud.find("y").unwrap()).unwrap();
        assert!(a >= g1 && g1 >= g2 && g2 >= y);
        assert_eq!(y, 0.0);
    }

    #[test]
    fn forward_plus_backward_equals_critical_path() {
        // For any node v on the critical path to t:
        // Df(v) + Db(v,t) == arrival(t). Checked with the gate-based model
        // where rise/fall coincide and the identity is exact.
        let (cloud, _) = setup();
        let lib = Library::fdsoi28();
        let delays = NodeDelays::from_library(&cloud, &lib, DelayModel::GateBased).unwrap();
        let arr = crate::forward::pure_arrivals(&cloud, &delays);
        for &t in cloud.sinks() {
            let bp = BackwardPass::run(&cloud, &delays, t);
            let at = arr[t.index()].max();
            // The sink's driver is trivially on the critical path.
            let mut ok = false;
            for v in cloud.fanin_cone(t) {
                if v == t {
                    continue;
                }
                if let Some(db) = bp.db(v) {
                    let total = arr[v.index()].max() + db;
                    assert!(total <= at + 1e-9, "no path may exceed the arrival");
                    if (total - at).abs() < 1e-9 {
                        ok = true;
                    }
                }
            }
            assert!(ok, "some node must lie on the critical path to {t}");
        }
    }

    #[test]
    fn any_sink_db_is_max_over_sinks() {
        let (cloud, delays) = setup();
        let all = db_to_any_sink(&cloud, &delays);
        let passes: Vec<BackwardPass> = cloud
            .sinks()
            .iter()
            .map(|&t| BackwardPass::run(&cloud, &delays, t))
            .collect();
        for (i, best) in all.iter().enumerate() {
            let v = NodeId(i as u32);
            if cloud.node(v).is_sink() {
                continue;
            }
            let expect = passes
                .iter()
                .filter_map(|p| p.db(v))
                .fold(f64::NEG_INFINITY, f64::max);
            match best {
                Some(arc) => assert!((arc.max() - expect).abs() < 1e-9),
                None => assert_eq!(expect, f64::NEG_INFINITY),
            }
        }
    }

    #[test]
    #[should_panic(expected = "is not a sink")]
    fn non_sink_rejected() {
        let (cloud, delays) = setup();
        let g1 = cloud.find("g1").unwrap();
        let _ = BackwardPass::run(&cloud, &delays, g1);
    }
}
