//! Incremental STA with **dirty-region propagation**.
//!
//! The paper's run-time discussion (Section VI) singles out timing
//! queries as the dominant cost of resiliency-aware retiming, and the
//! commercial "size-only incremental compile" it leans on is exactly an
//! incremental timer: after a localized edit, arrivals are re-propagated
//! only through the fan-out cone of the change. [`IncrementalTiming`]
//! brings that discipline to this STA layer:
//!
//! * delay edits ([`IncrementalTiming::scale_node`], the legalization
//!   upsizing lever) seed the edited node into a dirty set,
//! * cut moves ([`IncrementalTiming::set_cut`]) seed every node whose
//!   moved-flag flipped, plus its fanouts (the nodes whose input edges
//!   change latching),
//! * queries ([`IncrementalTiming::cut_timing`]) repair the cached
//!   arrival vectors by re-evaluating dirty nodes **in topological
//!   order**, following fanout edges only while the recomputed arrival
//!   actually changed (early termination on bit-identical values).
//!
//! Because each node re-evaluation applies exactly the same fold (fanin
//! order, edge relaunching, unate gate combination) as the from-scratch
//! pass in [`crate::forward`], the repaired vectors are **bit-identical**
//! to a full recompute — the from-scratch path stays the reference oracle
//! (differentially tested in `tests/property.rs`), and early termination
//! is sound: a bit-identical arrival cannot change anything downstream.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use retime_liberty::{DelayArc, Library};
use retime_netlist::{CloudEdge, CombCloud, Cut, NodeId};

use crate::analysis::{CutTiming, TimingAnalysis, EPS};
use crate::clock::TwoPhaseClock;
use crate::forward::{arc_max, relaunch, through_gate};
use crate::model::{DelayModel, NodeDelays, StaError};

/// Work counters of an [`IncrementalTiming`] instance, exposed so flows
/// can surface them through `retime_engine::PhaseTimings` event counters
/// (the Table VII-style breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalStats {
    /// Node arrivals re-evaluated by dirty-region repair (both views).
    pub nodes_reevaluated: u64,
    /// `cut_timing` queries answered from the memo without any repair.
    pub cache_hits: u64,
    /// Complete forward passes run (construction and explicit rebuilds).
    pub full_passes: u64,
}

impl IncrementalStats {
    /// Counter-wise difference against an earlier snapshot (for
    /// attributing work to one flow stage).
    pub fn since(&self, earlier: &IncrementalStats) -> IncrementalStats {
        IncrementalStats {
            nodes_reevaluated: self.nodes_reevaluated - earlier.nodes_reevaluated,
            cache_hits: self.cache_hits - earlier.cache_hits,
            full_passes: self.full_passes - earlier.full_passes,
        }
    }
}

/// The two cached arrival views an edit can invalidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum View {
    /// Pure combinational arrivals `D^f(v)` (no slave latch anywhere).
    Pure,
    /// Arrivals under the current cut (slaves re-launch crossing data).
    WithCut,
}

/// Incremental timing of one [`CombCloud`] under one [`TwoPhaseClock`]
/// and a *current* [`Cut`], with dirty-region repair (see module docs).
///
/// Owns its delay tables: edits go through [`scale_node`] so the engine
/// knows what changed. [`cut_timing`] is the workhorse query; it is
/// bit-identical to [`TimingAnalysis::cut_timing`] on a fresh analysis
/// with the same tables and cut.
///
/// [`scale_node`]: IncrementalTiming::scale_node
/// [`cut_timing`]: IncrementalTiming::cut_timing
#[derive(Debug, Clone)]
pub struct IncrementalTiming<'a> {
    cloud: &'a CombCloud,
    clock: TwoPhaseClock,
    delays: NodeDelays,
    cut: Cut,
    /// Cached pure arrivals (`View::Pure`).
    pure: Vec<DelayArc>,
    /// Cached arrivals under `cut` (`View::WithCut`).
    with_cut: Vec<DelayArc>,
    /// Topological position of each node (repair processing order).
    topo_pos: Vec<u32>,
    /// Nodes awaiting re-evaluation, per view.
    dirty_pure: Vec<bool>,
    dirty_cut: Vec<bool>,
    /// Seeds of the pending dirty regions, per view.
    seeds_pure: Vec<NodeId>,
    seeds_cut: Vec<NodeId>,
    /// Memoized timing of the current `(delays, cut)` state.
    memo: Option<CutTiming>,
    stats: IncrementalStats,
}

impl<'a> IncrementalTiming<'a> {
    /// Builds the engine from a library (one full forward pass per view).
    ///
    /// # Errors
    /// Returns [`StaError::Library`] if a gate function is unmapped.
    pub fn new(
        cloud: &'a CombCloud,
        lib: &Library,
        clock: TwoPhaseClock,
        model: DelayModel,
        cut: Cut,
    ) -> Result<IncrementalTiming<'a>, StaError> {
        let delays = NodeDelays::from_library(cloud, lib, model)?;
        Ok(Self::with_delays(cloud, delays, clock, cut))
    }

    /// Builds the engine from explicit delay tables.
    pub fn with_delays(
        cloud: &'a CombCloud,
        delays: NodeDelays,
        clock: TwoPhaseClock,
        cut: Cut,
    ) -> IncrementalTiming<'a> {
        let n = cloud.len();
        let mut topo_pos = vec![0u32; n];
        for (i, &v) in cloud.topo().iter().enumerate() {
            topo_pos[v.index()] = i as u32;
        }
        let mut inc = IncrementalTiming {
            cloud,
            clock,
            delays,
            cut,
            pure: vec![DelayArc::default(); n],
            with_cut: vec![DelayArc::default(); n],
            topo_pos,
            dirty_pure: vec![false; n],
            dirty_cut: vec![false; n],
            seeds_pure: Vec::new(),
            seeds_cut: Vec::new(),
            memo: None,
            stats: IncrementalStats::default(),
        };
        inc.rebuild();
        inc
    }

    /// Builds the engine from an existing analysis, cloning its delay
    /// tables (the hand-off point for flows that already ran a full STA).
    pub fn from_analysis(sta: &TimingAnalysis<'a>, cut: Cut) -> IncrementalTiming<'a> {
        Self::with_delays(sta.cloud(), sta.delays().clone(), *sta.clock(), cut)
    }

    /// The analysed cloud (borrowed for the cloud's own lifetime).
    pub fn cloud(&self) -> &'a CombCloud {
        self.cloud
    }

    /// The clock model.
    pub fn clock(&self) -> &TwoPhaseClock {
        &self.clock
    }

    /// The current delay tables (including every applied edit).
    pub fn delays(&self) -> &NodeDelays {
        &self.delays
    }

    /// The current cut.
    pub fn cut(&self) -> &Cut {
        &self.cut
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Recomputes both arrival views from scratch (a full pass). Called
    /// on construction; exposed for tests and forced resynchronization.
    pub fn rebuild(&mut self) {
        let _span = retime_trace::span("sta_full_pass");
        for &s in self.cloud.sources() {
            let p = source_arrival(&self.delays, &self.clock, None, s);
            let c = source_arrival(&self.delays, &self.clock, Some(&self.cut), s);
            self.pure[s.index()] = p;
            self.with_cut[s.index()] = c;
        }
        for &v in self.cloud.topo() {
            if self.cloud.node(v).is_source() {
                continue;
            }
            let p = eval_interior(self.cloud, &self.delays, &self.clock, None, &self.pure, v);
            self.pure[v.index()] = p;
            let c = eval_interior(
                self.cloud,
                &self.delays,
                &self.clock,
                Some(&self.cut),
                &self.with_cut,
                v,
            );
            self.with_cut[v.index()] = c;
        }
        for flag in self.dirty_pure.iter_mut().chain(self.dirty_cut.iter_mut()) {
            *flag = false;
        }
        self.seeds_pure.clear();
        self.seeds_cut.clear();
        self.memo = None;
        self.stats.full_passes += 1;
    }

    /// Scales the delay arc of `v` by `k` (the legalization upsizing
    /// lever) and marks `v` dirty in both views.
    pub fn scale_node(&mut self, v: NodeId, k: f64) {
        self.delays.scale_node(v, k);
        self.mark(View::Pure, v);
        self.mark(View::WithCut, v);
        self.memo = None;
    }

    /// Moves to a new cut, marking every node whose moved-flag flipped —
    /// plus its fanouts, whose input edges change latching — dirty in the
    /// with-cut view. Pure arrivals are unaffected by latch positions.
    pub fn set_cut(&mut self, cut: &Cut) {
        let mut changed = false;
        for i in 0..self.cloud.len() {
            let v = NodeId(i as u32);
            if self.cut.is_moved(v) != cut.is_moved(v) {
                changed = true;
                self.mark(View::WithCut, v);
                for &w in &self.cloud.node(v).fanout {
                    self.mark(View::WithCut, w);
                }
            }
        }
        if changed {
            self.cut = cut.clone();
            self.memo = None;
        }
    }

    /// The pure combinational arrival `D^f(v)` (worst transition),
    /// repaired on demand.
    pub fn df(&mut self, v: NodeId) -> f64 {
        self.repair(View::Pure);
        self.pure[v.index()].max()
    }

    /// The arrival at `v` under the current cut (worst transition),
    /// repaired on demand.
    pub fn arrival(&mut self, v: NodeId) -> f64 {
        self.repair(View::WithCut);
        self.with_cut[v.index()].max()
    }

    /// Full timing of the current cut — the incremental counterpart of
    /// [`TimingAnalysis::cut_timing`], bit-identical to it by
    /// construction. Repeated queries with no intervening edit are memo
    /// hits and cost nothing.
    pub fn cut_timing(&mut self) -> CutTiming {
        let _span = retime_trace::span("cut_timing");
        if let Some(memo) = &self.memo {
            self.stats.cache_hits += 1;
            retime_trace::counter("cache_hit", 1);
            return memo.clone();
        }
        retime_trace::counter("cache_miss", 1);
        self.repair(View::Pure);
        self.repair(View::WithCut);
        // Mirror `TimingAnalysis::cut_timing` field by field (same
        // iteration order, same comparisons) so results are bit-identical.
        let pi = self.clock.period();
        let pmax = self.clock.max_path_delay();
        let sink_arrivals: Vec<f64> = self
            .cloud
            .sinks()
            .iter()
            .map(|&t| self.with_cut[t.index()].max())
            .collect();
        let error_detecting: Vec<bool> = sink_arrivals.iter().map(|&a| a > pi + EPS).collect();
        let capture_violations: Vec<NodeId> = self
            .cloud
            .sinks()
            .iter()
            .copied()
            .zip(&sink_arrivals)
            .filter(|&(_, &a)| a > pmax + EPS)
            .map(|(t, _)| t)
            .collect();
        let close = self.clock.slave_close();
        let setup_violations: Vec<NodeId> = self
            .cut
            .latch_positions(self.cloud)
            .into_iter()
            .filter(|&v| self.pure[v.index()].max() > close + EPS)
            .collect();
        let timing = CutTiming {
            sink_arrivals,
            error_detecting,
            setup_violations,
            capture_violations,
        };
        self.memo = Some(timing.clone());
        timing
    }

    /// Marks `v` dirty in one view (idempotent).
    fn mark(&mut self, view: View, v: NodeId) {
        let (dirty, seeds) = match view {
            View::Pure => (&mut self.dirty_pure, &mut self.seeds_pure),
            View::WithCut => (&mut self.dirty_cut, &mut self.seeds_cut),
        };
        if !dirty[v.index()] {
            dirty[v.index()] = true;
            seeds.push(v);
        }
    }

    /// Repairs one view: re-evaluates dirty nodes in topological order,
    /// following fanouts only while the recomputed arrival changed.
    fn repair(&mut self, view: View) {
        let reevaluated_before = self.stats.nodes_reevaluated;
        let (dirty, seeds, arr) = match view {
            View::Pure => (&mut self.dirty_pure, &mut self.seeds_pure, &mut self.pure),
            View::WithCut => (&mut self.dirty_cut, &mut self.seeds_cut, &mut self.with_cut),
        };
        if seeds.is_empty() {
            return;
        }
        let _span = retime_trace::span(match view {
            View::Pure => "sta_repair_pure",
            View::WithCut => "sta_repair_cut",
        });
        retime_trace::counter("seeds", seeds.len() as u64);
        let cut = match view {
            View::Pure => None,
            View::WithCut => Some(&self.cut),
        };
        // Min-heap over topological positions: a node is evaluated only
        // after every (transitively dirty) fanin settled.
        let mut frontier: BinaryHeap<Reverse<(u32, u32)>> = seeds
            .drain(..)
            .map(|v| Reverse((self.topo_pos[v.index()], v.0)))
            .collect();
        while let Some(Reverse((_, raw))) = frontier.pop() {
            let v = NodeId(raw);
            if !dirty[v.index()] {
                continue; // duplicate heap entry
            }
            dirty[v.index()] = false;
            let node = self.cloud.node(v);
            let new = if node.is_source() {
                source_arrival(&self.delays, &self.clock, cut, v)
            } else {
                eval_interior(self.cloud, &self.delays, &self.clock, cut, arr, v)
            };
            self.stats.nodes_reevaluated += 1;
            let old = arr[v.index()];
            if !bit_equal(new, old) {
                arr[v.index()] = new;
                for &w in &node.fanout {
                    if !dirty[w.index()] {
                        dirty[w.index()] = true;
                        frontier.push(Reverse((self.topo_pos[w.index()], w.0)));
                    }
                }
            }
        }
        retime_trace::counter(
            "reevaluated",
            self.stats.nodes_reevaluated - reevaluated_before,
        );
    }
}

/// Exact (bit-level) arc comparison — the early-termination test. `==`
/// would treat `-0.0 == 0.0` and mishandle NaN; bits are unambiguous.
fn bit_equal(a: DelayArc, b: DelayArc) -> bool {
    a.rise.to_bits() == b.rise.to_bits() && a.fall.to_bits() == b.fall.to_bits()
}

/// Source arrival: the launch value, re-launched through the source
/// slave when the source is unmoved under a cut — exactly the
/// initialization of `pure_arrivals` / `arrivals_with_cut`.
fn source_arrival(
    delays: &NodeDelays,
    clock: &TwoPhaseClock,
    cut: Option<&Cut>,
    s: NodeId,
) -> DelayArc {
    let launch = DelayArc::symmetric(delays.launch());
    match cut {
        None => launch,
        Some(c) if c.is_moved(s) => launch,
        Some(_) => relaunch(launch, clock, delays),
    }
}

/// Re-evaluates one interior (gate or sink) node from its fanin
/// arrivals — the same fold, in the same fanin order, as
/// [`crate::forward`]'s full pass, so results are bit-identical.
fn eval_interior(
    cloud: &CombCloud,
    delays: &NodeDelays,
    clock: &TwoPhaseClock,
    cut: Option<&Cut>,
    arr: &[DelayArc],
    v: NodeId,
) -> DelayArc {
    let node = cloud.node(v);
    let mut input: Option<DelayArc> = None;
    for &u in &node.fanin {
        let mut via = arr[u.index()];
        if let Some(c) = cut {
            if c.edge_latched(CloudEdge { from: u, to: v }) {
                via = relaunch(via, clock, delays);
            }
        }
        input = Some(match input {
            None => via,
            Some(acc) => arc_max(acc, via),
        });
    }
    let input = input.unwrap_or_default();
    if node.is_gate() {
        through_gate(input, delays.arc(v), delays.sense(v))
    } else {
        input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retime_liberty::Library;
    use retime_netlist::bench;

    fn setup() -> (retime_netlist::Netlist, TwoPhaseClock) {
        let n = bench::parse(
            "inc",
            "\
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
g1 = NAND(a, b)
g2 = NOT(g1)
g3 = NAND(g2, b)
g4 = NOT(g3)
y = NAND(g4, a)
z = BUFF(g1)
",
        )
        .unwrap();
        (n, TwoPhaseClock::from_max_delay(0.5))
    }

    fn full_reference(
        cloud: &CombCloud,
        delays: &NodeDelays,
        clock: TwoPhaseClock,
        cut: &Cut,
    ) -> CutTiming {
        TimingAnalysis::with_delays(cloud, delays.clone(), clock).cut_timing(cut)
    }

    #[test]
    fn fresh_engine_matches_full_pass() {
        let (n, clock) = setup();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let cut = Cut::initial(&cloud);
        let mut inc =
            IncrementalTiming::new(&cloud, &lib, clock, DelayModel::PathBased, cut.clone())
                .unwrap();
        let want = full_reference(&cloud, inc.delays(), clock, &cut);
        assert_eq!(inc.cut_timing(), want);
        assert_eq!(inc.stats().full_passes, 1);
    }

    #[test]
    fn repeated_queries_hit_the_memo() {
        let (n, clock) = setup();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let mut inc = IncrementalTiming::new(
            &cloud,
            &lib,
            clock,
            DelayModel::PathBased,
            Cut::initial(&cloud),
        )
        .unwrap();
        let first = inc.cut_timing();
        let again = inc.cut_timing();
        assert_eq!(first, again);
        assert_eq!(inc.stats().cache_hits, 1);
    }

    #[test]
    fn scale_node_matches_full_recompute() {
        let (n, clock) = setup();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let cut = Cut::initial(&cloud);
        let mut inc =
            IncrementalTiming::new(&cloud, &lib, clock, DelayModel::PathBased, cut.clone())
                .unwrap();
        inc.cut_timing();
        for (g, k) in [("g2", 0.7), ("g1", 1.3), ("g4", 0.88)] {
            inc.scale_node(cloud.find(g).unwrap(), k);
            let want = full_reference(&cloud, inc.delays(), clock, &cut);
            assert_eq!(inc.cut_timing(), want);
        }
        assert_eq!(inc.stats().full_passes, 1, "repairs must stay incremental");
    }

    #[test]
    fn set_cut_matches_full_recompute() {
        let (n, clock) = setup();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let mut inc = IncrementalTiming::new(
            &cloud,
            &lib,
            clock,
            DelayModel::PathBased,
            Cut::initial(&cloud),
        )
        .unwrap();
        inc.cut_timing();
        let mut cut = Cut::initial(&cloud);
        for name in ["a", "b", "g1"] {
            cut.set_moved(cloud.find(name).unwrap(), true);
        }
        cut.validate(&cloud).unwrap();
        inc.set_cut(&cut);
        let want = full_reference(&cloud, inc.delays(), clock, &cut);
        assert_eq!(inc.cut_timing(), want);
        assert_eq!(inc.stats().full_passes, 1);
    }

    #[test]
    fn unit_scale_terminates_early() {
        let (n, clock) = setup();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let mut inc = IncrementalTiming::new(
            &cloud,
            &lib,
            clock,
            DelayModel::PathBased,
            Cut::initial(&cloud),
        )
        .unwrap();
        inc.cut_timing();
        let before = inc.stats().nodes_reevaluated;
        // Scaling by exactly 1.0 leaves the arc bits unchanged, so the
        // repair must stop at the seeded node in each view.
        inc.scale_node(cloud.find("g1").unwrap(), 1.0);
        inc.cut_timing();
        assert_eq!(inc.stats().nodes_reevaluated - before, 2);
    }

    #[test]
    fn dirty_region_stays_local() {
        let (n, clock) = setup();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let mut inc = IncrementalTiming::new(
            &cloud,
            &lib,
            clock,
            DelayModel::PathBased,
            Cut::initial(&cloud),
        )
        .unwrap();
        inc.cut_timing();
        let before = inc.stats().nodes_reevaluated;
        // g4 only feeds y: the repair must not visit g1/g2/g3/z's cone.
        inc.scale_node(cloud.find("g4").unwrap(), 0.5);
        inc.cut_timing();
        let revisited = inc.stats().nodes_reevaluated - before;
        // Per view: g4 + y-gate + y-sink = 3 nodes at most.
        assert!(revisited <= 6, "repair visited {revisited} nodes");
    }

    #[test]
    fn from_analysis_agrees_with_wrapped_sta() {
        let (n, clock) = setup();
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::PathBased).unwrap();
        let cut = Cut::initial(&cloud);
        let mut inc = IncrementalTiming::from_analysis(&sta, cut.clone());
        assert_eq!(inc.cut_timing(), sta.cut_timing(&cut));
        for &t in cloud.sinks() {
            assert_eq!(inc.df(t).to_bits(), sta.df(t).to_bits());
        }
    }
}
