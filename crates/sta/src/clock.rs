//! The two-phase clock model of the paper's Fig. 1.

use std::fmt;

/// A symmetric two-phase clocking scheme
/// `Π = ⟨φ1, γ1, φ2, γ2⟩` (Section II-A).
///
/// * `φ1` — the transparent window of phase 1 **and** the timing
///   resiliency window,
/// * `γ1` — gap from the falling edge of phase 1 to the rising edge of
///   phase 2,
/// * `φ2` — transparent window of phase 2 (the slave latches),
/// * `γ2` — gap back to the next phase-1 rising edge.
///
/// With ideal clock trees the period is `Π = φ1 + γ1 + φ2 + γ2` while the
/// maximum tolerated path delay between master stages is `P = Π + φ1`:
/// data arriving inside `[Π, Π + φ1]` transitions during the resiliency
/// window and must be flagged by an error-detecting master.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseClock {
    /// Phase-1 transparent window (= the resiliency window), ns.
    pub phi1: f64,
    /// Gap between phase 1 falling and phase 2 rising, ns.
    pub gamma1: f64,
    /// Phase-2 transparent window, ns.
    pub phi2: f64,
    /// Gap between phase 2 falling and the next phase 1 rising, ns.
    pub gamma2: f64,
}

impl TwoPhaseClock {
    /// Creates a clock from the four phase parameters.
    ///
    /// # Panics
    /// Panics if any parameter is negative/non-finite or if both
    /// transparent windows are not strictly positive.
    pub fn new(phi1: f64, gamma1: f64, phi2: f64, gamma2: f64) -> TwoPhaseClock {
        for (name, v) in [
            ("phi1", phi1),
            ("gamma1", gamma1),
            ("phi2", phi2),
            ("gamma2", gamma2),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be finite and ≥ 0");
        }
        assert!(phi1 > 0.0 && phi2 > 0.0, "transparent windows must be > 0");
        TwoPhaseClock {
            phi1,
            gamma1,
            phi2,
            gamma2,
        }
    }

    /// The paper's benchmark setting (Section VI-A): given the maximum
    /// combinational delay `P` between detecting stages, sets
    /// `φ1 = 0.3 P`, `γ1 = 0`, `φ2 = 0.35 P`, `γ2 = 0.05 P`,
    /// hence `Π = 0.7 P` and `Π + φ1 = P`.
    pub fn from_max_delay(p: f64) -> TwoPhaseClock {
        TwoPhaseClock::new(0.3 * p, 0.0, 0.35 * p, 0.05 * p)
    }

    /// The clock period `Π = φ1 + γ1 + φ2 + γ2`.
    pub fn period(&self) -> f64 {
        self.phi1 + self.gamma1 + self.phi2 + self.gamma2
    }

    /// The maximum tolerated path delay between master stages,
    /// `P = Π + φ1`.
    pub fn max_path_delay(&self) -> f64 {
        self.period() + self.phi1
    }

    /// The resiliency window length (= `φ1`).
    pub fn window(&self) -> f64 {
        self.phi1
    }

    /// Time (relative to the master launch edge) at which the slave
    /// latches become transparent: `φ1 + γ1`.
    pub fn slave_open(&self) -> f64 {
        self.phi1 + self.gamma1
    }

    /// Time at which the slave latches become opaque:
    /// `φ1 + γ1 + φ2` — the forward time-borrowing limit of
    /// constraint (6).
    pub fn slave_close(&self) -> f64 {
        self.phi1 + self.gamma1 + self.phi2
    }

    /// The backward time-borrowing limit of constraint (7):
    /// data launched by a slave must reach the terminating master within
    /// `φ2 + γ2 + φ1`.
    pub fn backward_limit(&self) -> f64 {
        self.phi2 + self.gamma2 + self.phi1
    }
}

impl fmt::Display for TwoPhaseClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Π=⟨φ1={}, γ1={}, φ2={}, γ2={}⟩ (period {}, window {})",
            self.phi1,
            self.gamma1,
            self.phi2,
            self.gamma2,
            self.period(),
            self.window()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios() {
        let c = TwoPhaseClock::from_max_delay(1.0);
        assert!((c.period() - 0.7).abs() < 1e-12);
        assert!((c.max_path_delay() - 1.0).abs() < 1e-12);
        assert!((c.window() - 0.3).abs() < 1e-12);
        assert!((c.slave_open() - 0.3).abs() < 1e-12);
        assert!((c.slave_close() - 0.65).abs() < 1e-12);
        assert!((c.backward_limit() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn fig4_example_clock() {
        // The paper's Fig. 4 uses φ1 = γ1 = φ2 = γ2 = 2.5.
        let c = TwoPhaseClock::new(2.5, 2.5, 2.5, 2.5);
        assert_eq!(c.period(), 10.0);
        assert_eq!(c.max_path_delay(), 12.5);
        assert_eq!(c.slave_close(), 7.5);
        assert_eq!(c.backward_limit(), 7.5);
    }

    #[test]
    #[should_panic(expected = "transparent windows must be > 0")]
    fn zero_window_rejected() {
        let _ = TwoPhaseClock::new(0.0, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_rejected() {
        let _ = TwoPhaseClock::new(f64::NAN, 0.0, 1.0, 0.0);
    }

    #[test]
    fn display() {
        let c = TwoPhaseClock::new(2.5, 2.5, 2.5, 2.5);
        assert!(c.to_string().contains("period 10"));
    }
}
