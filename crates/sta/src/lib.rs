#![warn(missing_docs)]
//! Static timing analysis for two-phase latch-based resilient circuits.
//!
//! Implements the timing substrate the paper obtains from a commercial
//! synthesis tool (Section VI-B):
//!
//! * the two-phase clock model `Π = ⟨φ1, γ1, φ2, γ2⟩` with resiliency
//!   window `φ1` ([`TwoPhaseClock`], paper Fig. 1),
//! * forward arrival times `D^f(v)` and per-endpoint backward delays
//!   `D^b(v, t)` over a [`retime_netlist::CombCloud`],
//! * both delay models compared in the paper's Table II:
//!   [`DelayModel::GateBased`] (sum of worst-case cell delays, as in the
//!   DAC'17 predecessor \[16\]) and [`DelayModel::PathBased`] (pin-to-pin
//!   rise/fall arcs restricted to *valid* transition combinations),
//! * the repositioned-slave arrival-time model `A(u, v, t)` of Eq. (5),
//! * cut-feasibility checks for the time-borrowing constraints (6)/(7),
//! * arrival analysis of a concrete [`retime_netlist::Cut`] (used to decide
//!   which masters must be error-detecting) and near-critical-endpoint
//!   reporting (Table I).
//!
//! # Invariants
//!
//! * **Determinism.** Arrival folds follow the stored fanin order, and
//!   [`IncrementalTiming`] repairs are bit-identical to a from-scratch
//!   pass (differentially tested in `tests/property.rs`), so results
//!   never depend on edit history or thread count.
//! * **Tracing is observation-only.** Under `retime-trace`,
//!   [`IncrementalTiming`] emits `cut_timing` spans (cache hit/miss
//!   counters), `sta_repair_pure`/`sta_repair_cut` spans (seed and
//!   re-evaluation counts), and `sta_full_pass` spans for rebuilds; the
//!   timing math never branches on the tracing state.
//!
//! # Example
//!
//! ```
//! use retime_liberty::Library;
//! use retime_netlist::{bench, CombCloud};
//! use retime_sta::{DelayModel, TimingAnalysis, TwoPhaseClock};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = bench::parse("d", "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
//! let cloud = CombCloud::extract(&n)?;
//! let lib = Library::fdsoi28();
//! let clock = TwoPhaseClock::from_max_delay(0.5);
//! let sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::PathBased)?;
//! assert!(sta.df(cloud.sinks()[0]) > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod backward;
pub mod clock;
pub mod forward;
pub mod incremental;
pub mod model;

pub use analysis::{CutTiming, SinkClass, TimingAnalysis};
pub use backward::BackwardPass;
pub use clock::TwoPhaseClock;
pub use forward::relaunch;
pub use incremental::{IncrementalStats, IncrementalTiming};
pub use model::{DelayModel, DelaySigma, NodeDelays, StaError, StatParams};
