//! The [`TimingAnalysis`] facade: forward/backward STA, the Eq. (5)
//! arrival model, sink classification, and cut timing.

use retime_liberty::{DelayArc, Library};
use retime_netlist::{CombCloud, Cut, NodeId};

use crate::backward::{db_to_any_sink, BackwardPass};
use crate::clock::TwoPhaseClock;
use crate::forward::{arrivals_with_cut, pure_arrivals, relaunch};
use crate::model::{DelayModel, NodeDelays, StaError};

/// Classification of a sink (potential master latch) with respect to the
/// retiming decision (Section IV-A):
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SinkClass {
    /// The longest combinational path already exceeds `Π`: the master must
    /// be error-detecting wherever the slaves go (`g(t) = ∅`).
    AlwaysErrorDetecting,
    /// Even the earliest valid slave position keeps the arrival within
    /// `Π`: never error-detecting (`g(t) = ∅`).
    NeverErrorDetecting,
    /// The slave positions decide — a *target master latch*.
    Target,
}

/// Timing of a concrete slave-latch placement.
#[derive(Debug, Clone, PartialEq)]
pub struct CutTiming {
    /// Worst arrival at each sink (indexed like `cloud.sinks()`).
    pub sink_arrivals: Vec<f64>,
    /// Whether each sink's master must be error-detecting
    /// (arrival > `Π`).
    pub error_detecting: Vec<bool>,
    /// Latch positions violating the forward time-borrowing constraint
    /// (6): data reaches the slave after it closes.
    pub setup_violations: Vec<NodeId>,
    /// Sinks violating the hard limit `Π + φ1` (constraint 7 in arrival
    /// form): even the resiliency window cannot absorb the path.
    pub capture_violations: Vec<NodeId>,
}

impl CutTiming {
    /// Number of error-detecting masters.
    pub fn edl_count(&self) -> usize {
        self.error_detecting.iter().filter(|&&e| e).count()
    }

    /// Whether the placement satisfies constraints (6) and (7).
    pub fn is_feasible(&self) -> bool {
        self.setup_violations.is_empty() && self.capture_violations.is_empty()
    }
}

/// Small tolerance absorbing floating-point noise in comparisons against
/// clock edges.
pub(crate) const EPS: f64 = 1e-9;

/// Static timing analysis of a [`CombCloud`] under a [`TwoPhaseClock`].
#[derive(Debug, Clone)]
pub struct TimingAnalysis<'a> {
    cloud: &'a CombCloud,
    clock: TwoPhaseClock,
    delays: NodeDelays,
    arrivals: Vec<DelayArc>,
    db_any: Vec<Option<DelayArc>>,
}

impl<'a> TimingAnalysis<'a> {
    /// Builds the analysis from a library.
    ///
    /// # Errors
    /// Returns [`StaError::Library`] if a gate function is unmapped.
    pub fn new(
        cloud: &'a CombCloud,
        lib: &Library,
        clock: TwoPhaseClock,
        model: DelayModel,
    ) -> Result<TimingAnalysis<'a>, StaError> {
        let delays = NodeDelays::from_library(cloud, lib, model)?;
        Ok(Self::with_delays(cloud, delays, clock))
    }

    /// Builds the analysis from explicit delay tables (e.g. the Fig. 4
    /// worked example).
    pub fn with_delays(
        cloud: &'a CombCloud,
        delays: NodeDelays,
        clock: TwoPhaseClock,
    ) -> TimingAnalysis<'a> {
        let arrivals = pure_arrivals(cloud, &delays);
        let db_any = db_to_any_sink(cloud, &delays);
        TimingAnalysis {
            cloud,
            clock,
            delays,
            arrivals,
            db_any,
        }
    }

    /// The analysed cloud (borrowed for the cloud's own lifetime, so
    /// derived engines like `IncrementalTiming` can outlive `self`).
    pub fn cloud(&self) -> &'a CombCloud {
        self.cloud
    }

    /// The clock model.
    pub fn clock(&self) -> &TwoPhaseClock {
        &self.clock
    }

    /// The delay tables.
    pub fn delays(&self) -> &NodeDelays {
        &self.delays
    }

    /// Rebuilds cached arrivals after delay edits (e.g.
    /// [`NodeDelays::scale_node`] during legalization).
    pub fn update_delays(&mut self, f: impl FnOnce(&mut NodeDelays)) {
        f(&mut self.delays);
        self.arrivals = pure_arrivals(self.cloud, &self.delays);
        self.db_any = db_to_any_sink(self.cloud, &self.delays);
    }

    /// The paper's `D^f(v)`: worst pure combinational arrival at the
    /// output of `v` (no slave latch anywhere, master launch included).
    pub fn df(&self, v: NodeId) -> f64 {
        self.arrivals[v.index()].max()
    }

    /// Per-polarity version of [`TimingAnalysis::df`].
    pub fn df_arc(&self, v: NodeId) -> DelayArc {
        self.arrivals[v.index()]
    }

    /// Worst `D^b(v, t)` over **all** sinks `t` (used for the `V_m` region
    /// test); `None` if `v` reaches no sink.
    pub fn db_any(&self, v: NodeId) -> Option<f64> {
        self.db_any[v.index()].map(DelayArc::max)
    }

    /// Runs the per-sink backward pass computing `D^b(·, t)`.
    ///
    /// # Panics
    /// Panics if `t` is not a sink.
    pub fn backward(&self, t: NodeId) -> BackwardPass {
        BackwardPass::run(self.cloud, &self.delays, t)
    }

    /// Batch form of [`TimingAnalysis::backward`]: runs the backward pass
    /// for every target, fanned out across `threads` workers (`0` = auto,
    /// honoring `RETIME_THREADS`). The passes are independent — this
    /// method takes `&self` — and the result vector is index-aligned with
    /// `targets`, so parallel and sequential runs are bit-identical.
    ///
    /// # Panics
    /// Panics if any target is not a sink.
    pub fn backward_many(&self, targets: &[NodeId], threads: usize) -> Vec<BackwardPass> {
        retime_engine::parallel_map(threads, targets, |&t| self.backward(t))
    }

    /// The arrival-time model of Eq. (5): worst arrival at the sink of
    /// `bp` when a slave latch sits on edge `(u, v)`:
    ///
    /// `A(u,v,t) = max{φ1+γ1+d^{ck_q}, D^f(u)+d^{d_q}} + d(v) + D^b(v,t)`,
    ///
    /// evaluated per valid rise/fall combination under the path-based
    /// model. Returns `None` when `v` does not reach the sink.
    pub fn a_value(&self, u: NodeId, v: NodeId, bp: &BackwardPass) -> Option<f64> {
        let through = bp.through(v)?;
        let open = self.clock.slave_open() + self.delays.latch_ckq();
        let dq = self.delays.latch_dq();
        let dfu = self.df_arc(u);
        let window_term = open + through.max();
        let rise_term = dfu.rise + dq + through.rise;
        let fall_term = dfu.fall + dq + through.fall;
        Some(window_term.max(rise_term).max(fall_term))
    }

    /// Arrival at the sink of `bp` when the slave latch sits **at the
    /// source** `s` (on the host edge, the initial position):
    /// the re-launched master output plus `D^b(s, t)`.
    pub fn a_host(&self, s: NodeId, bp: &BackwardPass) -> Option<f64> {
        let fo = if s == bp.sink() {
            return None;
        } else {
            bp.from_output(s)?
        };
        let launch = DelayArc::symmetric(self.delays.launch());
        let re = relaunch(launch, &self.clock, &self.delays);
        Some((re.rise + fo.rise).max(re.fall + fo.fall))
    }

    /// Classifies a sink per Section IV-A using its backward pass.
    pub fn classify_sink(&self, t: NodeId, bp: &BackwardPass) -> SinkClass {
        let pi = self.clock.period();
        // Longest pure path to t: arrival at the sink.
        if self.df(t) > pi + EPS {
            return SinkClass::AlwaysErrorDetecting;
        }
        // Worst over the earliest (source) placements: if even those meet
        // Π, the master can never be forced error-detecting by a valid cut
        // (moving latches forward only lowers the arrival until the pure
        // path dominates, which the first test already bounded by Π).
        let worst_initial = self
            .cloud
            .sources()
            .iter()
            .filter_map(|&s| self.a_host(s, bp))
            .fold(f64::NEG_INFINITY, f64::max);
        if worst_initial <= pi + EPS {
            SinkClass::NeverErrorDetecting
        } else {
            SinkClass::Target
        }
    }

    /// Near-critical endpoints: sinks whose pure combinational arrival
    /// falls inside the resiliency window (`> Π`). This is the NCE count
    /// of Table I and the EDL assignment rule for the baseline flow.
    pub fn near_critical_sinks(&self) -> Vec<NodeId> {
        let pi = self.clock.period();
        self.cloud
            .sinks()
            .iter()
            .copied()
            .filter(|&t| self.df(t) > pi + EPS)
            .collect()
    }

    /// Full timing of a concrete cut: per-sink arrivals, EDL requirements,
    /// and violations of constraints (6)/(7).
    pub fn cut_timing(&self, cut: &Cut) -> CutTiming {
        let arr = arrivals_with_cut(self.cloud, &self.delays, &self.clock, cut);
        let pi = self.clock.period();
        let pmax = self.clock.max_path_delay();
        let sink_arrivals: Vec<f64> = self
            .cloud
            .sinks()
            .iter()
            .map(|&t| arr[t.index()].max())
            .collect();
        let error_detecting: Vec<bool> = sink_arrivals.iter().map(|&a| a > pi + EPS).collect();
        let capture_violations: Vec<NodeId> = self
            .cloud
            .sinks()
            .iter()
            .copied()
            .zip(&sink_arrivals)
            .filter(|&(_, &a)| a > pmax + EPS)
            .map(|(t, _)| t)
            .collect();
        // Constraint (6): data must reach every placed slave before it
        // closes. The slave at node v sees the *pure* arrival at v
        // (exactly one latch per path, and it is this one).
        let close = self.clock.slave_close();
        let setup_violations: Vec<NodeId> = cut
            .latch_positions(self.cloud)
            .into_iter()
            .filter(|&v| self.df(v) > close + EPS)
            .collect();
        CutTiming {
            sink_arrivals,
            error_detecting,
            setup_violations,
            capture_violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retime_liberty::Library;
    use retime_netlist::bench;

    fn setup(p: f64) -> (retime_netlist::Netlist, TwoPhaseClock) {
        let n = bench::parse(
            "t",
            "\
INPUT(a)
INPUT(b)
OUTPUT(z)
g1 = NAND(a, b)
g2 = NOT(g1)
g3 = NAND(g2, b)
g4 = NOT(g3)
z = NAND(g4, a)
",
        )
        .unwrap();
        (n, TwoPhaseClock::from_max_delay(p))
    }

    #[test]
    fn df_increases_along_chain() {
        let (n, clock) = setup(0.5);
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::PathBased).unwrap();
        let g1 = cloud.find("g1").unwrap();
        let g3 = cloud.find("g3").unwrap();
        assert!(sta.df(g3) > sta.df(g1));
    }

    #[test]
    fn a_value_at_least_window_launch() {
        let (n, clock) = setup(0.5);
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::PathBased).unwrap();
        let t = cloud.sinks()[0];
        let bp = sta.backward(t);
        let g1 = cloud.find("g1").unwrap();
        let g2 = cloud.find("g2").unwrap();
        let a = sta.a_value(g1, g2, &bp).unwrap();
        assert!(a >= clock.slave_open() + sta.delays().latch_ckq());
    }

    #[test]
    fn a_value_monotone_in_latch_position() {
        // Moving the latch later along a chain cannot increase the arrival.
        let (n, clock) = setup(0.2);
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::GateBased).unwrap();
        let t = cloud.sinks()[0];
        let bp = sta.backward(t);
        let g1 = cloud.find("g1").unwrap();
        let g2 = cloud.find("g2").unwrap();
        let g3 = cloud.find("g3").unwrap();
        let g4 = cloud.find("g4").unwrap();
        let early = sta.a_value(g1, g2, &bp).unwrap();
        let mid = sta.a_value(g2, g3, &bp).unwrap();
        let late = sta.a_value(g3, g4, &bp).unwrap();
        assert!(early >= mid - 1e-12);
        assert!(mid >= late - 1e-12);
    }

    #[test]
    fn classify_fast_circuit_never_ed() {
        // A very relaxed clock: nothing is near-critical.
        let (n, _) = setup(0.5);
        let clock = TwoPhaseClock::from_max_delay(10.0);
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::PathBased).unwrap();
        for &t in cloud.sinks() {
            let bp = sta.backward(t);
            assert_eq!(sta.classify_sink(t, &bp), SinkClass::NeverErrorDetecting);
        }
        assert!(sta.near_critical_sinks().is_empty());
    }

    #[test]
    fn classify_tight_circuit_always_ed() {
        // A clock so tight the pure path exceeds Π.
        let (n, _) = setup(0.5);
        let clock = TwoPhaseClock::from_max_delay(0.05);
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::PathBased).unwrap();
        let t = cloud.sinks()[0];
        let bp = sta.backward(t);
        assert_eq!(sta.classify_sink(t, &bp), SinkClass::AlwaysErrorDetecting);
        assert!(!sta.near_critical_sinks().is_empty());
    }

    #[test]
    fn cut_timing_initial_cut() {
        let (n, clock) = setup(0.5);
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::PathBased).unwrap();
        let cut = Cut::initial(&cloud);
        let ct = sta.cut_timing(&cut);
        assert_eq!(ct.sink_arrivals.len(), cloud.sinks().len());
        assert_eq!(ct.error_detecting.len(), cloud.sinks().len());
        // Initial latches at sources always meet constraint (6): the data
        // arrives at launch time.
        assert!(ct.setup_violations.is_empty());
    }

    #[test]
    fn update_delays_refreshes_arrivals() {
        let (n, clock) = setup(0.5);
        let cloud = CombCloud::extract(&n).unwrap();
        let lib = Library::fdsoi28();
        let mut sta = TimingAnalysis::new(&cloud, &lib, clock, DelayModel::PathBased).unwrap();
        let t = cloud.sinks()[0];
        let before = sta.df(t);
        let g1 = cloud.find("g1").unwrap();
        sta.update_delays(|d| d.scale_node(g1, 0.5));
        assert!(sta.df(t) < before);
    }
}
