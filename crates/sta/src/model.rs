//! Delay models and per-node delay tables.

use std::error::Error;
use std::fmt;

use retime_liberty::{DelayArc, LatchCell, Library, LibraryError, Sense};
use retime_netlist::{CombCloud, Gate, NodeId, NodeKind};

#[cfg(test)]
mod tests {
    use super::*;
    use retime_liberty::Library;
    use retime_netlist::bench;

    fn cloud() -> CombCloud {
        let n = bench::parse(
            "m",
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\ng = NAND(a, b)\nz = XOR(g, b)\n",
        )
        .unwrap();
        CombCloud::extract(&n).unwrap()
    }

    #[test]
    fn gate_based_arcs_symmetric() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let d = NodeDelays::from_library(&c, &lib, DelayModel::GateBased).unwrap();
        let g = c.find("g").unwrap();
        let arc = d.arc(g);
        assert_eq!(arc.rise, arc.fall);
        assert_eq!(d.sense(g), Sense::Positive);
    }

    #[test]
    fn path_based_keeps_rise_fall() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let d = NodeDelays::from_library(&c, &lib, DelayModel::PathBased).unwrap();
        let g = c.find("g").unwrap();
        let arc = d.arc(g);
        assert_ne!(arc.rise, arc.fall);
        assert_eq!(d.sense(g), Sense::Negative);
    }

    #[test]
    fn gate_based_never_faster() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let gb = NodeDelays::from_library(&c, &lib, DelayModel::GateBased).unwrap();
        let pb = NodeDelays::from_library(&c, &lib, DelayModel::PathBased).unwrap();
        for i in 0..c.len() {
            let v = NodeId(i as u32);
            assert!(gb.max_delay(v) >= pb.arc(v).rise - 1e-12);
            assert!(gb.max_delay(v) >= pb.arc(v).fall - 1e-12);
        }
    }

    #[test]
    fn statistical_nominal_mirrors_gate_based() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let gb = NodeDelays::from_library(&c, &lib, DelayModel::GateBased).unwrap();
        let st = NodeDelays::from_library(&c, &lib, DelayModel::Statistical(StatParams::DEFAULT))
            .unwrap();
        for i in 0..c.len() {
            let v = NodeId(i as u32);
            assert_eq!(gb.arc(v), st.arc(v), "nominal arcs must be bit-identical");
            assert_eq!(st.sense(v), Sense::Positive);
        }
        let g = c.find("g").unwrap();
        assert!(st.sigma(g).total() > 0.0);
        assert_eq!(gb.sigma(g).total(), 0.0);
    }

    #[test]
    fn statistical_sigma_zero_is_all_zero() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let p = StatParams::new(0.0, 0.0, 0.9987, 7);
        let st = NodeDelays::from_library(&c, &lib, DelayModel::Statistical(p)).unwrap();
        for i in 0..c.len() {
            assert_eq!(st.sigma(NodeId(i as u32)).total(), 0.0);
        }
    }

    #[test]
    fn statistical_sigma_prefers_library_extension() {
        let c = cloud();
        let table = retime_liberty::SigmaTable::uniform(
            "t",
            retime_liberty::SigmaSpec {
                global: 0.10,
                local: 0.0,
            },
        );
        let lib = Library::fdsoi28().with_sigma(table);
        let st = NodeDelays::from_library(&c, &lib, DelayModel::Statistical(StatParams::DEFAULT))
            .unwrap();
        let g = c.find("g").unwrap();
        let sigma = st.sigma(g);
        assert!((sigma.global - 0.10 * st.max_delay(g)).abs() < 1e-12);
        assert_eq!(sigma.local, 0.0);
    }

    #[test]
    fn scale_node_scales_sigma() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let mut st =
            NodeDelays::from_library(&c, &lib, DelayModel::Statistical(StatParams::DEFAULT))
                .unwrap();
        let g = c.find("g").unwrap();
        let before = st.sigma(g).total();
        st.scale_node(g, 0.5);
        assert!((st.sigma(g).total() - 0.5 * before).abs() < 1e-12);
    }

    #[test]
    fn stat_params_round_trip_and_display() {
        let p = StatParams::new(0.03, 0.005, 0.9987, 42);
        assert_eq!(p.sigma_frac(), 0.03);
        assert_eq!(p.clock_sigma_frac(), 0.005);
        assert_eq!(p.yield_target(), 0.9987);
        assert_eq!(DelayModel::Statistical(p).to_string(), "statistical");
    }

    #[test]
    fn sigma_jitter_is_deterministic_and_bounded() {
        for i in 0..64 {
            let j = sigma_jitter(0x5EED, i);
            assert!((0.75..1.25).contains(&j), "{j}");
            assert_eq!(j, sigma_jitter(0x5EED, i));
        }
        assert_ne!(sigma_jitter(1, 0), sigma_jitter(2, 0));
    }

    #[test]
    fn explicit_table_size_checked() {
        let c = cloud();
        let latch = *Library::fdsoi28().latch();
        let err = NodeDelays::explicit(&c, &[1.0], latch, 0.0);
        assert!(matches!(err, Err(StaError::BadDelayTable { .. })));
        let ok = NodeDelays::explicit(&c, &vec![1.0; c.len()], latch, 0.0).unwrap();
        assert_eq!(ok.max_delay(c.find("g").unwrap()), 1.0);
    }

    #[test]
    fn scale_node_speeds_up() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let mut d = NodeDelays::from_library(&c, &lib, DelayModel::PathBased).unwrap();
        let g = c.find("g").unwrap();
        let before = d.max_delay(g);
        d.scale_node(g, 0.8);
        assert!(d.max_delay(g) < before);
    }

    #[test]
    fn sources_and_sinks_zero_delay() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let d = NodeDelays::from_library(&c, &lib, DelayModel::PathBased).unwrap();
        for &s in c.sources() {
            assert_eq!(d.max_delay(s), 0.0);
        }
        for &t in c.sinks() {
            assert_eq!(d.max_delay(t), 0.0);
        }
    }

    #[test]
    fn with_launch_overrides() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let d = NodeDelays::from_library(&c, &lib, DelayModel::PathBased)
            .unwrap()
            .with_launch(0.5);
        assert_eq!(d.launch(), 0.5);
    }
}

/// Parameters of the statistical delay mode, packed as integers so
/// [`DelayModel`] stays `Copy + Eq + Hash` (and so its `Debug` form —
/// which feeds the serve cache key — is exact). Fractions are stored in
/// parts-per-million of their base quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatParams {
    /// Gate-delay sigma as ppm of the nominal delay (the seeded fallback
    /// when the library carries no sigma extension).
    pub sigma_ppm: u32,
    /// Clock-period sigma (jitter) as ppm of the period.
    pub clock_sigma_ppm: u32,
    /// Target timing yield as ppm (`998_700` ≈ the 3σ point 0.9987).
    pub yield_ppm: u32,
    /// Seed of the deterministic per-gate sigma jitter.
    pub seed: u64,
}

impl StatParams {
    /// The defaults the env knobs fall back to: 3 % gate sigma, 0.5 %
    /// clock sigma, a 0.9987 (≈3σ) yield target.
    pub const DEFAULT: StatParams = StatParams {
        sigma_ppm: 30_000,
        clock_sigma_ppm: 5_000,
        yield_ppm: 998_700,
        seed: 0x57A7_5EED,
    };

    /// Builds params from plain fractions, quantizing to ppm (values
    /// round-trip exactly for any input with ≤ 6 decimal places).
    ///
    /// # Panics
    /// Panics when a fraction is outside `[0, 1]` or the yield target is
    /// outside `(0, 1)`.
    pub fn new(sigma_frac: f64, clock_sigma_frac: f64, yield_target: f64, seed: u64) -> StatParams {
        assert!(
            (0.0..=1.0).contains(&sigma_frac) && (0.0..=1.0).contains(&clock_sigma_frac),
            "sigma fractions must be in [0, 1]"
        );
        assert!(
            yield_target > 0.0 && yield_target < 1.0,
            "yield target must be in (0, 1)"
        );
        let ppm = |x: f64| (x * 1e6).round() as u32;
        StatParams {
            sigma_ppm: ppm(sigma_frac),
            clock_sigma_ppm: ppm(clock_sigma_frac),
            yield_ppm: ppm(yield_target),
            seed,
        }
    }

    /// Gate sigma as a fraction of nominal delay. Dividing by the
    /// exactly-representable `1e6` is correctly rounded, so any input
    /// with ≤ 6 decimal places round-trips through [`StatParams::new`]
    /// bit-exactly (multiplying by the inexact `1e-6` would not).
    pub fn sigma_frac(&self) -> f64 {
        f64::from(self.sigma_ppm) / 1e6
    }

    /// Clock sigma as a fraction of the period.
    pub fn clock_sigma_frac(&self) -> f64 {
        f64::from(self.clock_sigma_ppm) / 1e6
    }

    /// The timing-yield threshold below which an endpoint needs an EDL.
    pub fn yield_target(&self) -> f64 {
        f64::from(self.yield_ppm) / 1e6
    }
}

/// The delay models compared in the paper's Table II, plus the
/// statistical mode of the Li/Chen/Schlichtmann extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelayModel {
    /// The DAC'17 predecessor's model \[16\]: every gate contributes its
    /// worst-case cell delay; rise/fall are not distinguished. Conservative
    /// — nodes that could be in the free retiming region `V_r` may land in
    /// `V_m`/`V_n`, and non-critical endpoints may be charged EDL overhead.
    GateBased,
    /// The journal version's model: pin-to-pin rise/fall arcs restricted to
    /// valid transition combinations, mirroring a commercial-grade timing
    /// engine. Strictly less pessimistic than [`DelayModel::GateBased`].
    PathBased,
    /// First-order canonical-form statistical delays: nominal tables
    /// identical to [`DelayModel::GateBased`] plus per-node sigma split
    /// into a globally correlated and an independent local component
    /// (from the library's Liberty sigma extension when attached,
    /// otherwise the seeded fraction-of-nominal fallback in
    /// [`StatParams`]). With `sigma_ppm == clock_sigma_ppm == 0` every
    /// downstream decision collapses bit-identically onto the
    /// gate-based mode.
    Statistical(StatParams),
}

impl fmt::Display for DelayModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayModel::GateBased => f.write_str("gate-based"),
            DelayModel::PathBased => f.write_str("path-based"),
            DelayModel::Statistical(_) => f.write_str("statistical"),
        }
    }
}

/// Errors raised while building timing tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// A cloud gate has no library cell.
    Library(LibraryError),
    /// An explicit delay table does not match the cloud.
    BadDelayTable {
        /// Expected number of entries (cloud nodes).
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Library(e) => write!(f, "library lookup failed: {e}"),
            StaError::BadDelayTable { expected, got } => write!(
                f,
                "explicit delay table has {got} entries, cloud has {expected} nodes"
            ),
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::Library(e) => Some(e),
            StaError::BadDelayTable { .. } => None,
        }
    }
}

impl From<LibraryError> for StaError {
    fn from(e: LibraryError) -> Self {
        StaError::Library(e)
    }
}

/// The standard deviation of one node's delay, split into the globally
/// correlated and the independent local component (both in
/// nanoseconds). All-zero outside the statistical delay mode.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelaySigma {
    /// Globally correlated sigma (shared across all gates of a sample).
    pub global: f64,
    /// Independent local sigma (per-gate mismatch).
    pub local: f64,
}

impl DelaySigma {
    /// The total standard deviation `sqrt(global² + local²)`.
    pub fn total(&self) -> f64 {
        self.global.hypot(self.local)
    }
}

/// Per-node delay arcs plus the sequential parameters needed by the
/// arrival model of Eq. (5).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDelays {
    model: DelayModel,
    arcs: Vec<DelayArc>,
    senses: Vec<Sense>,
    /// Per-node delay sigma (all-zero unless the model is statistical).
    sigmas: Vec<DelaySigma>,
    /// Master launch delay added at sources (the master latch clock-to-Q).
    launch: f64,
    /// Slave latch clock-to-Q (`d^{ck_q}(l)` of Eq. 5).
    latch_ckq: f64,
    /// Slave latch D-to-Q (`d^{d_q}(l)` of Eq. 5).
    latch_dq: f64,
}

impl NodeDelays {
    /// Builds delay tables from a library.
    ///
    /// # Errors
    /// Returns [`StaError::Library`] if a gate function is unmapped.
    pub fn from_library(
        cloud: &CombCloud,
        lib: &Library,
        model: DelayModel,
    ) -> Result<NodeDelays, StaError> {
        let n = cloud.len();
        let mut arcs = vec![DelayArc::default(); n];
        let mut senses = vec![Sense::Positive; n];
        let mut sigmas = vec![DelaySigma::default(); n];
        for (i, node) in cloud.nodes().iter().enumerate() {
            if let NodeKind::Gate { gate, .. } = node.kind {
                let cell = lib.cell(gate_lib_name(gate))?;
                let fanin = node.fanin.len();
                let fanout = node.fanout.len();
                match model {
                    DelayModel::GateBased => {
                        arcs[i] = DelayArc::symmetric(cell.max_delay(fanin, fanout));
                        senses[i] = Sense::Positive;
                    }
                    DelayModel::PathBased => {
                        arcs[i] = cell.delay(fanin, fanout);
                        senses[i] = cell.sense;
                    }
                    DelayModel::Statistical(params) => {
                        // Nominal tables mirror the gate-based model
                        // exactly — that identity is what makes the
                        // sigma→0 collapse bit-identical.
                        let d = cell.max_delay(fanin, fanout);
                        arcs[i] = DelayArc::symmetric(d);
                        senses[i] = Sense::Positive;
                        let (global_frac, local_frac) = match lib.sigma() {
                            Some(table) => {
                                let spec = table.for_cell(&cell.name);
                                (spec.global, spec.local)
                            }
                            None => {
                                // Seeded fallback: the configured
                                // fraction of nominal, jittered per gate
                                // in [0.75, 1.25], split 0.6/0.8 into
                                // global/local (0.6² + 0.8² = 1).
                                let f = params.sigma_frac() * sigma_jitter(params.seed, i);
                                (0.6 * f, 0.8 * f)
                            }
                        };
                        sigmas[i] = DelaySigma {
                            global: global_frac * d,
                            local: local_frac * d,
                        };
                    }
                }
            }
        }
        let latch = *lib.latch();
        Ok(NodeDelays {
            model,
            arcs,
            senses,
            sigmas,
            launch: latch.clk_to_q,
            latch_ckq: latch.clk_to_q,
            latch_dq: latch.d_to_q,
        })
    }

    /// Builds an explicit, unit-style delay table (used by the paper's
    /// Fig. 4 worked example, which specifies per-gate delays directly and
    /// ideal latches). Arcs are symmetric and positive-unate, so the model
    /// degenerates to the gate-based one.
    ///
    /// # Errors
    /// Returns [`StaError::BadDelayTable`] on a size mismatch.
    pub fn explicit(
        cloud: &CombCloud,
        delays: &[f64],
        latch: LatchCell,
        launch: f64,
    ) -> Result<NodeDelays, StaError> {
        if delays.len() != cloud.len() {
            return Err(StaError::BadDelayTable {
                expected: cloud.len(),
                got: delays.len(),
            });
        }
        Ok(NodeDelays {
            model: DelayModel::GateBased,
            arcs: delays.iter().map(|&d| DelayArc::symmetric(d)).collect(),
            senses: vec![Sense::Positive; cloud.len()],
            sigmas: vec![DelaySigma::default(); cloud.len()],
            launch,
            latch_ckq: latch.clk_to_q,
            latch_dq: latch.d_to_q,
        })
    }

    /// Overrides the source launch delay (e.g. a flip-flop clock-to-Q when
    /// timing the original flop-based design for Table I).
    pub fn with_launch(mut self, launch: f64) -> NodeDelays {
        self.launch = launch;
        self
    }

    /// The delay model these tables were built for.
    pub fn model(&self) -> DelayModel {
        self.model
    }

    /// The delay arc of node `v` (zero for sources and sinks).
    pub fn arc(&self, v: NodeId) -> DelayArc {
        self.arcs[v.index()]
    }

    /// Worst-transition delay of node `v` (the paper's `d(v)`).
    pub fn max_delay(&self, v: NodeId) -> f64 {
        self.arcs[v.index()].max()
    }

    /// The unateness of node `v`.
    pub fn sense(&self, v: NodeId) -> Sense {
        self.senses[v.index()]
    }

    /// The delay sigma of node `v` (all-zero outside the statistical
    /// mode).
    pub fn sigma(&self, v: NodeId) -> DelaySigma {
        self.sigmas[v.index()]
    }

    /// Master launch delay applied at sources.
    pub fn launch(&self) -> f64 {
        self.launch
    }

    /// Slave latch clock-to-Q.
    pub fn latch_ckq(&self) -> f64 {
        self.latch_ckq
    }

    /// Slave latch D-to-Q.
    pub fn latch_dq(&self) -> f64 {
        self.latch_dq
    }

    /// Scales the delay arc of one node by `k` — the mechanism behind the
    /// "size-only incremental compile" legalization step (Section VI-B):
    /// upsizing a gate trades area for speed, modelled as a bounded
    /// speed-up factor.
    pub fn scale_node(&mut self, v: NodeId, k: f64) {
        self.arcs[v.index()] = self.arcs[v.index()].scale(k);
        // Sigma is a fraction of nominal, so it scales with the cell.
        let s = &mut self.sigmas[v.index()];
        s.global *= k;
        s.local *= k;
    }
}

/// Deterministic per-gate sigma jitter in `[0.75, 1.25]` — splitmix64
/// over `(seed, node index)`, no global state.
fn sigma_jitter(seed: u64, index: usize) -> f64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53 high-quality bits → uniform in [0, 1).
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    0.75 + 0.5 * u
}

/// Library cell-name for a netlist gate.
pub(crate) fn gate_lib_name(g: Gate) -> &'static str {
    match g {
        Gate::Buf => "BUFF",
        Gate::Not => "NOT",
        Gate::And => "AND",
        Gate::Nand => "NAND",
        Gate::Or => "OR",
        Gate::Nor => "NOR",
        Gate::Xor => "XOR",
        Gate::Xnor => "XNOR",
        _ => "BUFF",
    }
}
