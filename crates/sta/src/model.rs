//! Delay models and per-node delay tables.

use std::error::Error;
use std::fmt;

use retime_liberty::{DelayArc, LatchCell, Library, LibraryError, Sense};
use retime_netlist::{CombCloud, Gate, NodeId, NodeKind};

#[cfg(test)]
mod tests {
    use super::*;
    use retime_liberty::Library;
    use retime_netlist::bench;

    fn cloud() -> CombCloud {
        let n = bench::parse(
            "m",
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\ng = NAND(a, b)\nz = XOR(g, b)\n",
        )
        .unwrap();
        CombCloud::extract(&n).unwrap()
    }

    #[test]
    fn gate_based_arcs_symmetric() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let d = NodeDelays::from_library(&c, &lib, DelayModel::GateBased).unwrap();
        let g = c.find("g").unwrap();
        let arc = d.arc(g);
        assert_eq!(arc.rise, arc.fall);
        assert_eq!(d.sense(g), Sense::Positive);
    }

    #[test]
    fn path_based_keeps_rise_fall() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let d = NodeDelays::from_library(&c, &lib, DelayModel::PathBased).unwrap();
        let g = c.find("g").unwrap();
        let arc = d.arc(g);
        assert_ne!(arc.rise, arc.fall);
        assert_eq!(d.sense(g), Sense::Negative);
    }

    #[test]
    fn gate_based_never_faster() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let gb = NodeDelays::from_library(&c, &lib, DelayModel::GateBased).unwrap();
        let pb = NodeDelays::from_library(&c, &lib, DelayModel::PathBased).unwrap();
        for i in 0..c.len() {
            let v = NodeId(i as u32);
            assert!(gb.max_delay(v) >= pb.arc(v).rise - 1e-12);
            assert!(gb.max_delay(v) >= pb.arc(v).fall - 1e-12);
        }
    }

    #[test]
    fn explicit_table_size_checked() {
        let c = cloud();
        let latch = *Library::fdsoi28().latch();
        let err = NodeDelays::explicit(&c, &[1.0], latch, 0.0);
        assert!(matches!(err, Err(StaError::BadDelayTable { .. })));
        let ok = NodeDelays::explicit(&c, &vec![1.0; c.len()], latch, 0.0).unwrap();
        assert_eq!(ok.max_delay(c.find("g").unwrap()), 1.0);
    }

    #[test]
    fn scale_node_speeds_up() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let mut d = NodeDelays::from_library(&c, &lib, DelayModel::PathBased).unwrap();
        let g = c.find("g").unwrap();
        let before = d.max_delay(g);
        d.scale_node(g, 0.8);
        assert!(d.max_delay(g) < before);
    }

    #[test]
    fn sources_and_sinks_zero_delay() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let d = NodeDelays::from_library(&c, &lib, DelayModel::PathBased).unwrap();
        for &s in c.sources() {
            assert_eq!(d.max_delay(s), 0.0);
        }
        for &t in c.sinks() {
            assert_eq!(d.max_delay(t), 0.0);
        }
    }

    #[test]
    fn with_launch_overrides() {
        let c = cloud();
        let lib = Library::fdsoi28();
        let d = NodeDelays::from_library(&c, &lib, DelayModel::PathBased)
            .unwrap()
            .with_launch(0.5);
        assert_eq!(d.launch(), 0.5);
    }
}

/// The two delay models compared in the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelayModel {
    /// The DAC'17 predecessor's model \[16\]: every gate contributes its
    /// worst-case cell delay; rise/fall are not distinguished. Conservative
    /// — nodes that could be in the free retiming region `V_r` may land in
    /// `V_m`/`V_n`, and non-critical endpoints may be charged EDL overhead.
    GateBased,
    /// The journal version's model: pin-to-pin rise/fall arcs restricted to
    /// valid transition combinations, mirroring a commercial-grade timing
    /// engine. Strictly less pessimistic than [`DelayModel::GateBased`].
    PathBased,
}

impl fmt::Display for DelayModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayModel::GateBased => f.write_str("gate-based"),
            DelayModel::PathBased => f.write_str("path-based"),
        }
    }
}

/// Errors raised while building timing tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// A cloud gate has no library cell.
    Library(LibraryError),
    /// An explicit delay table does not match the cloud.
    BadDelayTable {
        /// Expected number of entries (cloud nodes).
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Library(e) => write!(f, "library lookup failed: {e}"),
            StaError::BadDelayTable { expected, got } => write!(
                f,
                "explicit delay table has {got} entries, cloud has {expected} nodes"
            ),
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::Library(e) => Some(e),
            StaError::BadDelayTable { .. } => None,
        }
    }
}

impl From<LibraryError> for StaError {
    fn from(e: LibraryError) -> Self {
        StaError::Library(e)
    }
}

/// Per-node delay arcs plus the sequential parameters needed by the
/// arrival model of Eq. (5).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDelays {
    model: DelayModel,
    arcs: Vec<DelayArc>,
    senses: Vec<Sense>,
    /// Master launch delay added at sources (the master latch clock-to-Q).
    launch: f64,
    /// Slave latch clock-to-Q (`d^{ck_q}(l)` of Eq. 5).
    latch_ckq: f64,
    /// Slave latch D-to-Q (`d^{d_q}(l)` of Eq. 5).
    latch_dq: f64,
}

impl NodeDelays {
    /// Builds delay tables from a library.
    ///
    /// # Errors
    /// Returns [`StaError::Library`] if a gate function is unmapped.
    pub fn from_library(
        cloud: &CombCloud,
        lib: &Library,
        model: DelayModel,
    ) -> Result<NodeDelays, StaError> {
        let n = cloud.len();
        let mut arcs = vec![DelayArc::default(); n];
        let mut senses = vec![Sense::Positive; n];
        for (i, node) in cloud.nodes().iter().enumerate() {
            if let NodeKind::Gate { gate, .. } = node.kind {
                let cell = lib.cell(gate_lib_name(gate))?;
                let fanin = node.fanin.len();
                let fanout = node.fanout.len();
                match model {
                    DelayModel::GateBased => {
                        arcs[i] = DelayArc::symmetric(cell.max_delay(fanin, fanout));
                        senses[i] = Sense::Positive;
                    }
                    DelayModel::PathBased => {
                        arcs[i] = cell.delay(fanin, fanout);
                        senses[i] = cell.sense;
                    }
                }
            }
        }
        let latch = *lib.latch();
        Ok(NodeDelays {
            model,
            arcs,
            senses,
            launch: latch.clk_to_q,
            latch_ckq: latch.clk_to_q,
            latch_dq: latch.d_to_q,
        })
    }

    /// Builds an explicit, unit-style delay table (used by the paper's
    /// Fig. 4 worked example, which specifies per-gate delays directly and
    /// ideal latches). Arcs are symmetric and positive-unate, so the model
    /// degenerates to the gate-based one.
    ///
    /// # Errors
    /// Returns [`StaError::BadDelayTable`] on a size mismatch.
    pub fn explicit(
        cloud: &CombCloud,
        delays: &[f64],
        latch: LatchCell,
        launch: f64,
    ) -> Result<NodeDelays, StaError> {
        if delays.len() != cloud.len() {
            return Err(StaError::BadDelayTable {
                expected: cloud.len(),
                got: delays.len(),
            });
        }
        Ok(NodeDelays {
            model: DelayModel::GateBased,
            arcs: delays.iter().map(|&d| DelayArc::symmetric(d)).collect(),
            senses: vec![Sense::Positive; cloud.len()],
            launch,
            latch_ckq: latch.clk_to_q,
            latch_dq: latch.d_to_q,
        })
    }

    /// Overrides the source launch delay (e.g. a flip-flop clock-to-Q when
    /// timing the original flop-based design for Table I).
    pub fn with_launch(mut self, launch: f64) -> NodeDelays {
        self.launch = launch;
        self
    }

    /// The delay model these tables were built for.
    pub fn model(&self) -> DelayModel {
        self.model
    }

    /// The delay arc of node `v` (zero for sources and sinks).
    pub fn arc(&self, v: NodeId) -> DelayArc {
        self.arcs[v.index()]
    }

    /// Worst-transition delay of node `v` (the paper's `d(v)`).
    pub fn max_delay(&self, v: NodeId) -> f64 {
        self.arcs[v.index()].max()
    }

    /// The unateness of node `v`.
    pub fn sense(&self, v: NodeId) -> Sense {
        self.senses[v.index()]
    }

    /// Master launch delay applied at sources.
    pub fn launch(&self) -> f64 {
        self.launch
    }

    /// Slave latch clock-to-Q.
    pub fn latch_ckq(&self) -> f64 {
        self.latch_ckq
    }

    /// Slave latch D-to-Q.
    pub fn latch_dq(&self) -> f64 {
        self.latch_dq
    }

    /// Scales the delay arc of one node by `k` — the mechanism behind the
    /// "size-only incremental compile" legalization step (Section VI-B):
    /// upsizing a gate trades area for speed, modelled as a bounded
    /// speed-up factor.
    pub fn scale_node(&mut self, v: NodeId, k: f64) {
        self.arcs[v.index()] = self.arcs[v.index()].scale(k);
    }
}

/// Library cell-name for a netlist gate.
pub(crate) fn gate_lib_name(g: Gate) -> &'static str {
    match g {
        Gate::Buf => "BUFF",
        Gate::Not => "NOT",
        Gate::And => "AND",
        Gate::Nand => "NAND",
        Gate::Or => "OR",
        Gate::Nor => "NOR",
        Gate::Xor => "XOR",
        Gate::Xnor => "XNOR",
        _ => "BUFF",
    }
}
