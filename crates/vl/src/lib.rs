//! Virtual-library resiliency-aware retiming (Section V of the paper).
//!
//! The virtual library lets a conventional, resiliency-unaware retimer
//! see the EDL trade-off through cell attributes: error-detecting latches
//! carry `(1 + c)×` area, non-error-detecting latches carry a setup
//! extended by the resiliency window. Three seeding variants are
//! evaluated, exactly as in the paper:
//!
//! * [`VlVariant::Evl`] — every master initially error-detecting,
//! * [`VlVariant::Nvl`] — every master initially non-error-detecting,
//! * [`VlVariant::Rvl`] — near-critical masters error-detecting, the
//!   rest regular.
//!
//! # The commercial-tool model
//!
//! The paper observes that commercial retiming makes latch-type decisions
//! in optimization steps *decoupled* from retiming and behaves
//! conservatively with exotic cells ("the synthesis tool is not designed
//! to robustly choose between latches with disparate trade-offs"). We
//! model that observed behavior directly (see `DESIGN.md`):
//!
//! * stages whose (typed) master already meets its constraint are **not
//!   touched** — their fan-in cones are frozen at the initial latch
//!   positions (timing-driven retiming only moves what violates). This
//!   reproduces the published signature exactly: RVL's final EDL count in
//!   Table VI equals Table I's NCE count (s1423: 54, s5378: 55, s9234:
//!   61, …) because the tool never rescues a stage it typed
//!   error-detecting;
//! * stages typed non-error-detecting and violating their tightened setup
//!   are retimed forward past the safe frontier `g(t)` where feasible;
//!   where infeasible the tool leaves a violation;
//! * the **post-retiming swap step** (Section V / VI-C) then re-types
//!   every master by its actual arrival: unnecessary error-detecting
//!   latches become plain (reclaiming `c ×` latch area), and violated
//!   non-error-detecting latches become error-detecting.
//!
//! The movable-master extension of Section VI-E is modelled as a greedy
//! forward master-merging pre-pass ([`movable::forward_merge_pass`]).
//!
//! Like every flow, [`vl_retime`] is deterministic across thread counts
//! (`RETIME_THREADS`, [`VlConfig::with_threads`]) and runs under a
//! `vl_retime` root span when `retime-trace` is enabled — tracing is
//! observation-only.

pub mod flow;
pub mod movable;

pub use flow::{vl_retime, vl_retime_with_sweep, VlConfig, VlReport, VlVariant};
pub use movable::forward_merge_pass;
