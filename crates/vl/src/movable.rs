//! The movable-master extension (Section VI-E).
//!
//! Releasing the "do-not-retime" constraint on master latches lets the
//! commercial tool reposition masters too. We model the dominant,
//! area-relevant move as a greedy **forward master merge**: when every
//! fanin of a gate is the output of a single-fanout flip-flop, those
//! flip-flops can be pushed forward through the gate and merged into one
//! (the classic forward retiming move that reduces register count). The
//! paper finds this extra freedom yields "little to no gain" on average
//! (Table IX); the greedy pass reproduces that: a handful of merges on
//! some circuits, none on others.

use std::collections::HashMap;

use retime_netlist::{CellId, Gate, Netlist, NetlistError};

/// Applies forward master merges until a fixpoint (or `max_moves`),
/// returning the transformed netlist and the number of moves applied.
///
/// Only flip-flop style netlists are transformed (the move happens before
/// master/slave splitting in the flow).
///
/// # Errors
/// Propagates netlist reconstruction errors.
pub fn forward_merge_pass(n: &Netlist, max_moves: usize) -> Result<(Netlist, usize), NetlistError> {
    let mut current = n.clone();
    let mut moves = 0;
    while moves < max_moves {
        match forward_merge_once(&current)? {
            Some(next) => {
                current = next;
                moves += 1;
            }
            None => break,
        }
    }
    Ok((current, moves))
}

/// Finds one profitable merge and applies it, or returns `None`.
fn forward_merge_once(n: &Netlist) -> Result<Option<Netlist>, NetlistError> {
    let fanouts = n.fanouts();
    // Candidate: combinational gate g with ≥ 2 fanins, every fanin a
    // distinct DFF with exactly one fanout (g itself), and g is not
    // already registered... any such gate trades k flip-flops for 1.
    let mut candidate: Option<CellId> = None;
    'scan: for (i, c) in n.cells().iter().enumerate() {
        if !c.gate.is_combinational() || c.fanin.len() < 2 {
            continue;
        }
        let mut seen = Vec::new();
        for &f in &c.fanin {
            let fc = n.cell(f);
            if fc.gate != Gate::Dff || fanouts[f.index()].len() != 1 || seen.contains(&f) {
                continue 'scan;
            }
            seen.push(f);
        }
        candidate = Some(CellId(i as u32));
        break;
    }
    let Some(gate_id) = candidate else {
        return Ok(None);
    };

    // Rebuild the netlist: the fanin DFFs are bypassed (their D drivers
    // feed the gate directly) and a new DFF is inserted after the gate.
    let mut out = Netlist::new(n.name());
    let mut map: HashMap<CellId, CellId> = HashMap::new();
    let bypassed: Vec<CellId> = n.cell(gate_id).fanin.clone();
    // First pass: create cells (placeholder fanins), skipping bypassed
    // DFFs; add the new DFF right after the gate.
    let mut new_dff: Option<CellId> = None;
    for (i, c) in n.cells().iter().enumerate() {
        let id = CellId(i as u32);
        if bypassed.contains(&id) {
            continue;
        }
        match c.gate {
            Gate::Input => {
                map.insert(id, out.add_input(c.name.clone()));
            }
            Gate::Output => { /* second pass */ }
            g => {
                let nid = out.add_gate(c.name.clone(), g, &vec![CellId(0); c.fanin.len()])?;
                map.insert(id, nid);
                if id == gate_id {
                    let d = out.add_gate(format!("{}__fwd", c.name), Gate::Dff, &[nid])?;
                    new_dff = Some(d);
                }
            }
        }
    }
    let new_dff = new_dff.ok_or_else(|| {
        NetlistError::Inconsistent("merge candidate vanished during rebuild".into())
    })?;
    // Resolve a fanin reference in the new netlist: bypassed DFFs map to
    // their D drivers; consumers of the merged gate read the new DFF.
    let resolve = |map: &HashMap<CellId, CellId>, f: CellId, reader_is_gate: bool| -> CellId {
        if bypassed.contains(&f) {
            let d_driver = n.cell(f).fanin[0];
            map[&d_driver]
        } else if f == gate_id && !reader_is_gate {
            new_dff
        } else {
            map[&f]
        }
    };
    for (i, c) in n.cells().iter().enumerate() {
        let id = CellId(i as u32);
        if bypassed.contains(&id) {
            continue;
        }
        match c.gate {
            Gate::Input => {}
            Gate::Output => {
                let drv = resolve(&map, c.fanin[0], false);
                out.add_output(c.name.clone(), drv)?;
            }
            _ => {
                let fanin: Vec<CellId> = c
                    .fanin
                    .iter()
                    .map(|&f| {
                        // The merged gate itself keeps direct (bypassed)
                        // drivers; everyone else reads it through the new
                        // flip-flop.
                        resolve(&map, f, id == gate_id)
                    })
                    .collect();
                out.replace_fanin(map[&id], fanin);
            }
        }
    }
    out.validate()?;
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use retime_netlist::bench;

    #[test]
    fn merges_sibling_flops() {
        let n = bench::parse(
            "m",
            "\
INPUT(a)
INPUT(b)
OUTPUT(z)
q1 = DFF(a)
q2 = DFF(b)
g = AND(q1, q2)
z = BUFF(g)
",
        )
        .unwrap();
        let (out, moves) = forward_merge_pass(&n, 8).unwrap();
        assert_eq!(moves, 1);
        let s = out.stats();
        assert_eq!(s.dffs, 1, "two flops merge into one");
        // Function preserved modulo one cycle of latency on that path:
        // structure check is sufficient here; latency-aware equivalence
        // is exercised in the integration suite.
        out.validate().unwrap();
    }

    #[test]
    fn no_merge_when_flop_shared() {
        let n = bench::parse(
            "m",
            "\
INPUT(a)
INPUT(b)
OUTPUT(z)
OUTPUT(w)
q1 = DFF(a)
q2 = DFF(b)
g = AND(q1, q2)
w = NOT(q1)
z = BUFF(g)
",
        )
        .unwrap();
        let (_, moves) = forward_merge_pass(&n, 8).unwrap();
        assert_eq!(moves, 0, "q1 fans out elsewhere; the merge is illegal");
    }

    #[test]
    fn respects_move_budget() {
        let n = bench::parse(
            "m",
            "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(z)
q1 = DFF(a)
q2 = DFF(b)
q3 = DFF(c)
q4 = DFF(d)
g1 = AND(q1, q2)
g2 = OR(q3, q4)
z = XOR(g1, g2)
",
        )
        .unwrap();
        let (_, moves) = forward_merge_pass(&n, 1).unwrap();
        assert_eq!(moves, 1);
        // Full pass cascades: g1's and g2's flops merge, and the two
        // merged flops then merge again through the XOR.
        let (out, moves) = forward_merge_pass(&n, 8).unwrap();
        assert_eq!(moves, 3);
        assert_eq!(out.stats().dffs, 1);
    }
}
