//! The EVL/NVL/RVL virtual-library retiming flows, running as a
//! `Sta → Seed → Classify → Solve → Commit → Swap` pipeline on the shared
//! [`retime_engine`] flow-engine layer. The classification of non-ED-typed
//! masters fans out across worker threads
//! ([`classify_many`]).

use std::time::Instant;

use retime_core::classify_many;
use retime_engine::{FlowContext, Pipeline, Stage};
use retime_liberty::{EdlOverhead, Library};
use retime_netlist::{CombCloud, NodeId, NodeKind};
use retime_retime::{
    solve_with_slot, AreaModel, Region, Regions, RetimeError, RetimeOutcome, RetimingProblem,
    RetimingSolution, RetimingSweep, SolverEngine,
};
use retime_sta::{DelayModel, IncrementalTiming, SinkClass, TimingAnalysis, TwoPhaseClock};

/// The three initial-typing variants of Section V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VlVariant {
    /// E-type: every master starts error-detecting.
    Evl,
    /// N-type: every master starts non-error-detecting.
    Nvl,
    /// R-type: near-critical masters start error-detecting.
    Rvl,
}

impl VlVariant {
    /// Short display name (`EVL-RAR` …).
    pub fn name(self) -> &'static str {
        match self {
            VlVariant::Evl => "EVL-RAR",
            VlVariant::Nvl => "NVL-RAR",
            VlVariant::Rvl => "RVL-RAR",
        }
    }
}

/// Configuration of a virtual-library run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VlConfig {
    /// Initial-typing variant.
    pub variant: VlVariant,
    /// EDL area overhead `c`.
    pub overhead: EdlOverhead,
    /// Delay model.
    pub model: DelayModel,
    /// Whether to run the post-retiming swap step (Section VI-C). The
    /// paper reports all results with it on; turning it off reproduces
    /// the "−0.36 % improvement" failure mode it fixes.
    pub post_swap: bool,
    /// Solver engine for the tool's min-area retiming. Problems route
    /// through [`RetimingProblem::flow_instance`], so every engine sees
    /// one shared CSR arc arena; the network-simplex engine additionally
    /// honours the `RETIME_PIVOT` pivot-rule override.
    pub engine: SolverEngine,
    /// Worker threads for the classification fan-out: `0` = auto
    /// (`RETIME_THREADS` or the machine's parallelism), `1` = the
    /// sequential reference path.
    pub threads: usize,
}

impl VlConfig {
    /// Default configuration for a variant: path-based timing, post-swap
    /// on, automatic thread count.
    pub fn new(variant: VlVariant, overhead: EdlOverhead) -> VlConfig {
        VlConfig {
            variant,
            overhead,
            model: DelayModel::PathBased,
            post_swap: true,
            engine: SolverEngine::MinCostFlow,
            threads: 0,
        }
    }

    /// Switches the delay model.
    pub fn with_model(mut self, model: DelayModel) -> VlConfig {
        self.model = model;
        self
    }

    /// Disables the post-retiming swap step.
    pub fn without_post_swap(mut self) -> VlConfig {
        self.post_swap = false;
        self
    }

    /// Pins the classification fan-out width (`1` forces the sequential
    /// path; `0` restores auto).
    pub fn with_threads(mut self, threads: usize) -> VlConfig {
        self.threads = threads;
        self
    }
}

/// Result of a virtual-library run.
#[derive(Debug, Clone)]
pub struct VlReport {
    /// Final placement and area bill.
    pub outcome: RetimeOutcome,
    /// Masters initially typed error-detecting.
    pub typed_ed: usize,
    /// Cloud nodes frozen because their stage was typed as meeting
    /// timing.
    pub frozen_nodes: usize,
    /// Non-ED-typed targets whose frontier the tool managed to force.
    pub forced_targets: usize,
    /// Non-ED-typed masters the tool could not fix (left violating; the
    /// swap step re-types them).
    pub failed_targets: usize,
    /// Masters whose type the post-swap step changed.
    pub swapped: usize,
    /// Uniform per-stage instrumentation (shared with the base and G-RAR
    /// flows; also available as `outcome.phases`).
    pub phases: retime_engine::PhaseTimings,
}

#[derive(Default)]
struct VlState<'a> {
    sta: Option<TimingAnalysis<'a>>,
    /// Incremental timer seeded at the initial cut by the `Seed` stage and
    /// reused by the `Swap` stage (replaying legalization and the final
    /// cut as dirty-region edits instead of full recomputes).
    inc: Option<IncrementalTiming<'a>>,
    base_regions: Option<Regions>,
    regions: Option<Regions>,
    /// `(sink idx, sink node, typed error-detecting)` per master-backed
    /// sink.
    typed: Vec<(usize, NodeId, bool)>,
    typed_ed: usize,
    frozen_nodes: usize,
    forced_targets: usize,
    failed_targets: usize,
    sol: Option<RetimingSolution>,
    outcome: Option<RetimeOutcome>,
    swapped: usize,
}

/// Runs the virtual-library flow.
///
/// # Errors
/// Propagates infeasible clocking, STA, and solver failures.
pub fn vl_retime(
    cloud: &CombCloud,
    lib: &Library,
    clock: TwoPhaseClock,
    cfg: &VlConfig,
) -> Result<VlReport, RetimeError> {
    vl_retime_impl(cloud, lib, clock, cfg, None)
}

/// [`vl_retime`] with a persistent warm-start slot. The virtual-library
/// solve does not depend on the EDL overhead at all (the overhead only
/// prices the area bill), so across a `c` sweep with a fixed variant the
/// targeted flow instance is *identical* and every probe after the first
/// is answered verbatim from the cached basis (`warm_hits`).
/// `RETIME_WARM=0` turns the slot into a pass-through; a structurally
/// different problem re-primes it. Per-call warm counters land in the
/// report's `Stage::Solve` instrumentation.
///
/// # Errors
/// The same failures as [`vl_retime`].
pub fn vl_retime_with_sweep(
    cloud: &CombCloud,
    lib: &Library,
    clock: TwoPhaseClock,
    cfg: &VlConfig,
    slot: &mut Option<RetimingSweep>,
) -> Result<VlReport, RetimeError> {
    vl_retime_impl(cloud, lib, clock, cfg, Some(slot))
}

fn vl_retime_impl(
    cloud: &CombCloud,
    lib: &Library,
    clock: TwoPhaseClock,
    cfg: &VlConfig,
    mut slot: Option<&mut Option<RetimingSweep>>,
) -> Result<VlReport, RetimeError> {
    let started = Instant::now();
    let pi = clock.period();
    let _flow_span = retime_trace::span("vl_retime");
    let mut ctx = FlowContext::new(VlState::default());

    Pipeline::<FlowContext<VlState<'_>>, RetimeError>::new()
        .stage(Stage::Sta, |ctx| {
            let sta = TimingAnalysis::new(cloud, lib, clock, cfg.model)?;
            let base_regions = Regions::compute(&sta)?;
            ctx.data.regions = Some(base_regions.clone());
            ctx.data.base_regions = Some(base_regions);
            ctx.data.sta = Some(sta);
            Ok(())
        })
        .stage(Stage::Seed, |ctx| {
            let state = &mut ctx.data;
            let sta = state.sta.as_ref().expect("sta stage ran");
            let base_regions = state.base_regions.as_ref().expect("sta stage ran");
            let regions = state.regions.as_mut().expect("sta stage ran");

            // 1. Initial typing per master-backed sink. Near-criticality
            //    for RVL typing follows the paper's Table I definition:
            //    arrival with the *initial* slave placement past Π. The
            //    query runs on an incremental timer (bit-identical to
            //    `sta.cut_timing`) that the swap stage later reuses.
            let mut inc =
                IncrementalTiming::from_analysis(sta, retime_netlist::Cut::initial(cloud));
            let initial_timing = inc.cut_timing();
            state.inc = Some(inc);
            // Statistical mode types by the margined initial arrival (the
            // yield-aware near-criticality rule); at sigma = 0 the margined
            // flags are bitwise the deterministic ones.
            let stat_flags = matches!(cfg.model, DelayModel::Statistical(_)).then(|| {
                retime_retime::stat_cut_summary(
                    cloud,
                    sta.delays(),
                    clock,
                    &retime_netlist::Cut::initial(cloud),
                )
                .0
            });
            state.typed = cloud
                .sinks()
                .iter()
                .enumerate()
                .filter(|&(_, &t)| matches!(cloud.node(t).kind, NodeKind::Sink { master: Some(_) }))
                .map(|(i, &t)| {
                    let ed = match cfg.variant {
                        VlVariant::Evl => true,
                        VlVariant::Nvl => false,
                        VlVariant::Rvl => match &stat_flags {
                            Some(flags) => flags[i],
                            None => initial_timing.sink_arrivals[i] > pi + 1e-9,
                        },
                    };
                    (i, t, ed)
                })
                .collect();
            state.typed_ed = state.typed.iter().filter(|&&(_, _, ed)| ed).count();

            // 2. Freeze the fan-in cones of typed-ED stages (the tool's
            //    conservative "timing met, don't touch" behavior) — except
            //    nodes the legality region forces to move.
            let mut frozen = vec![false; cloud.len()];
            for &(_, t, ed) in &state.typed {
                if ed {
                    for v in cloud.fanin_cone(t) {
                        frozen[v.index()] = true;
                    }
                }
            }
            for (i, &f) in frozen.iter().enumerate() {
                let v = NodeId(i as u32);
                if f && base_regions.of(v) == Region::Free {
                    regions.set(v, Region::Forbidden);
                    state.frozen_nodes += 1;
                }
            }
            ctx.timings.count("typed_ed", ctx.data.typed_ed as u64);
            ctx.timings.count("frozen", ctx.data.frozen_nodes as u64);
            Ok(())
        })
        .stage(Stage::Classify, |ctx| {
            // 3. For non-ED-typed masters that violate the tightened
            //    setup, force the slaves past the frontier g(t) where
            //    feasible. The per-target backward passes and cut-sets
            //    compute in parallel; the region mutations then apply
            //    sequentially in sink order, identical to the sequential
            //    path.
            let state = &mut ctx.data;
            let sta = state.sta.as_ref().expect("sta stage ran");
            let base_regions = state.base_regions.as_ref().expect("sta stage ran");
            let regions = state.regions.as_mut().expect("sta stage ran");
            let non_ed: Vec<NodeId> = state
                .typed
                .iter()
                .filter(|&&(_, _, ed)| !ed)
                .map(|&(_, t, _)| t)
                .collect();
            let classified = classify_many(sta, &non_ed, cfg.threads);
            for (class, g) in classified {
                match class {
                    SinkClass::NeverErrorDetecting => {}
                    SinkClass::AlwaysErrorDetecting => state.failed_targets += 1,
                    SinkClass::Target => {
                        // The closure of g(t) must avoid (originally)
                        // forbidden nodes, or the move is illegal and the
                        // tool gives up.
                        let mut closure: Vec<NodeId> = Vec::new();
                        let mut ok = true;
                        'outer: for &gv in &g {
                            for u in cloud.fanin_cone(gv) {
                                if base_regions.of(u) == Region::Forbidden {
                                    ok = false;
                                    break 'outer;
                                }
                                closure.push(u);
                            }
                        }
                        if ok {
                            for u in closure {
                                regions.set(u, Region::Mandatory);
                            }
                            state.forced_targets += 1;
                        } else {
                            state.failed_targets += 1;
                        }
                    }
                }
            }
            ctx.timings.count("forced", ctx.data.forced_targets as u64);
            ctx.timings.count("failed", ctx.data.failed_targets as u64);
            Ok(())
        })
        .stage(Stage::Solve, |ctx| {
            // 4. The tool's min-area retiming under those constraints (no
            //    EDL coupling in the objective — that is G-RAR's edge),
            //    with the conservative movement cost of a commercial
            //    retimer.
            let regions = ctx.data.regions.as_ref().expect("sta stage ran");
            let mut problem = RetimingProblem::build(cloud, regions);
            problem.set_movement_penalty(retime_retime::COMMERCIAL_MOVEMENT_PENALTY);
            let sol = match &mut slot {
                Some(slot) => {
                    let slot = &mut **slot;
                    let before = slot.as_ref().map(|s| s.stats()).unwrap_or_default();
                    let sol = solve_with_slot(&problem, cfg.engine, slot)?;
                    if let Some(sweep) = slot.as_ref() {
                        // saturating: a re-primed slot restarts its counters.
                        let s = sweep.stats();
                        ctx.timings
                            .count("warm_hits", s.warm_hits.saturating_sub(before.warm_hits));
                        ctx.timings.count(
                            "cost_resumes",
                            s.cost_resumes.saturating_sub(before.cost_resumes),
                        );
                        ctx.timings.count(
                            "demand_deltas",
                            s.demand_deltas.saturating_sub(before.demand_deltas),
                        );
                        ctx.timings.count(
                            "cold_solves",
                            s.cold_solves.saturating_sub(before.cold_solves),
                        );
                    }
                    sol
                }
                None => problem.solve(cfg.engine)?,
            };
            ctx.data.sol = Some(sol);
            ctx.timings.count("solver_invocations", 1);
            Ok(())
        })
        .stage(Stage::Commit, |ctx| {
            // 5. Assemble; `assemble` types EDL by actual arrival.
            let state = &mut ctx.data;
            let sol = state.sol.take().expect("solve stage ran");
            let area_model = AreaModel::new(lib, cfg.overhead);
            let sta = state.sta.as_mut().expect("sta stage ran");
            let outcome =
                RetimeOutcome::assemble(sta, &area_model, sol.cut, sol.solver_time, started)?;
            outcome.legalize.record_counters(&mut ctx.timings);
            ctx.data.outcome = Some(outcome);
            Ok(())
        })
        .stage(Stage::Swap, |ctx| {
            let state = &mut ctx.data;
            let outcome = state.outcome.as_mut().expect("commit stage ran");
            if cfg.post_swap {
                // Re-type by actual arrival, answering the query on the
                // Seed stage's incremental timer: the legalization
                // upsizing and the final cut replay as dirty-region edits,
                // and the resulting flags are bit-identical to the full
                // recompute `assemble` performed.
                let inc = state.inc.as_mut().expect("seed stage ran");
                let before = inc.stats();
                for &g in &outcome.legalize.upsized {
                    inc.scale_node(g, retime_retime::LEGALIZE_SPEEDUP);
                }
                inc.set_cut(&outcome.cut);
                let final_timing = inc.cut_timing();
                let area_model = AreaModel::new(lib, cfg.overhead);
                // Statistical mode re-types with the margined rule on the
                // legalized delay tables (`final_delays` carries the
                // upsizing, sigmas scaled alongside) — the same call
                // `assemble` made, so the assert still certifies the
                // incremental replay path against the full recompute.
                let ed_now = match cfg.model {
                    DelayModel::Statistical(_) => {
                        retime_retime::stat_cut_summary(
                            cloud,
                            &outcome.final_delays,
                            clock,
                            &outcome.cut,
                        )
                        .0
                    }
                    _ => area_model.ed_flags(cloud, &final_timing),
                };
                debug_assert_eq!(
                    ed_now, outcome.ed_sinks,
                    "incremental swap typing must match the full recompute"
                );
                for &(i, _, ed) in &state.typed {
                    if ed_now[i] != ed {
                        state.swapped += 1;
                    }
                }
                let work = inc.stats().since(&before);
                ctx.timings
                    .count("swap_reevaluated", work.nodes_reevaluated);
                ctx.timings.count("swap_cache_hits", work.cache_hits);
            } else {
                // Keep the initial typing (violations and waste included).
                let area_model = AreaModel::new(lib, cfg.overhead);
                let mut ed_sinks = vec![false; cloud.sinks().len()];
                for &(i, _, ed) in &state.typed {
                    ed_sinks[i] = ed;
                }
                outcome.seq = area_model.sequential(cloud, &outcome.cut, &ed_sinks);
                outcome.ed_sinks = ed_sinks;
                outcome.total_area = outcome.comb_area + outcome.seq.total();
            }
            ctx.timings.count("swapped", ctx.data.swapped as u64);
            Ok(())
        })
        .run(&mut ctx)?;

    let (state, timings) = ctx.into_parts();
    let mut outcome = state.outcome.expect("commit stage ran");
    outcome.phases = timings.clone();
    Ok(VlReport {
        outcome,
        typed_ed: state.typed_ed,
        frozen_nodes: state.frozen_nodes,
        forced_targets: state.forced_targets,
        failed_targets: state.failed_targets,
        swapped: state.swapped,
        phases: timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use retime_netlist::bench;
    use retime_retime::base_retime;

    fn testbench() -> CombCloud {
        let mut src = String::from(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nq1 = DFF(d1)\nq2 = DFF(d2)\nq3 = DFF(d3)\n",
        );
        // Deep cone into q1.
        src.push_str("c1 = NAND(a, b)\n");
        for i in 2..=14 {
            src.push_str(&format!("c{i} = NOT(c{})\n", i - 1));
        }
        src.push_str("d1 = BUFF(c14)\n");
        // Medium cone into q2.
        src.push_str("m1 = NOR(b, q1)\n");
        for i in 2..=6 {
            src.push_str(&format!("m{i} = NOT(m{})\n", i - 1));
        }
        src.push_str("d2 = BUFF(m6)\n");
        // Shallow cone into q3.
        src.push_str("d3 = NOR(q2, a)\n");
        src.push_str("z = NOT(q3)\n");
        CombCloud::extract(&bench::parse("vtb", &src).unwrap()).unwrap()
    }

    fn clock_for(cloud: &CombCloud, lib: &Library, factor: f64) -> TwoPhaseClock {
        let sta = TimingAnalysis::new(
            cloud,
            lib,
            TwoPhaseClock::from_max_delay(1.0),
            DelayModel::PathBased,
        )
        .unwrap();
        let crit = cloud
            .sinks()
            .iter()
            .map(|&t| sta.df(t))
            .fold(0.0f64, f64::max);
        let latch = lib.latch();
        TwoPhaseClock::from_max_delay(crit * factor + latch.d_to_q + latch.clk_to_q)
    }

    #[test]
    fn all_variants_run_and_balance() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        for variant in [VlVariant::Evl, VlVariant::Nvl, VlVariant::Rvl] {
            let cfg = VlConfig::new(variant, EdlOverhead::MEDIUM);
            let rep = vl_retime(&cloud, &lib, clock, &cfg).unwrap();
            rep.outcome.cut.validate(&cloud).unwrap();
            let expect = rep.outcome.comb_area + rep.outcome.seq.total();
            assert!(
                (rep.outcome.total_area - expect).abs() < 1e-9,
                "{variant:?} books must balance"
            );
        }
    }

    #[test]
    fn evl_freezes_everything() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        let rep = vl_retime(
            &cloud,
            &lib,
            clock,
            &VlConfig::new(VlVariant::Evl, EdlOverhead::MEDIUM),
        )
        .unwrap();
        assert!(rep.frozen_nodes > 0);
        // With everything typed ED and frozen, slaves stay near the
        // sources: as many slaves as an un-retimed design would have
        // (modulo legality-mandated moves).
        assert!(rep.outcome.seq.slaves >= cloud.sources().len() - 2);
    }

    #[test]
    fn rvl_not_worse_than_evl() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        for c in EdlOverhead::SWEEP {
            let evl = vl_retime(&cloud, &lib, clock, &VlConfig::new(VlVariant::Evl, c)).unwrap();
            let rvl = vl_retime(&cloud, &lib, clock, &VlConfig::new(VlVariant::Rvl, c)).unwrap();
            assert!(
                rvl.outcome.total_area <= evl.outcome.total_area + 1e-9,
                "RVL must not lose to EVL at {c} ({} vs {})",
                rvl.outcome.total_area,
                evl.outcome.total_area
            );
        }
    }

    #[test]
    fn post_swap_reclaims_area() {
        // The paper: without the swap step the improvement can go
        // negative; with it, unnecessary EDL is reclaimed.
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.3);
        let c = EdlOverhead::HIGH;
        let with = vl_retime(&cloud, &lib, clock, &VlConfig::new(VlVariant::Evl, c)).unwrap();
        let without = vl_retime(
            &cloud,
            &lib,
            clock,
            &VlConfig::new(VlVariant::Evl, c).without_post_swap(),
        )
        .unwrap();
        assert!(with.outcome.seq.total() <= without.outcome.seq.total() + 1e-9);
        assert!(with.swapped > 0 || with.outcome.seq.edl == without.outcome.seq.edl);
    }

    #[test]
    fn evl_without_swap_keeps_every_master_error_detecting() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        let rep = vl_retime(
            &cloud,
            &lib,
            clock,
            &VlConfig::new(VlVariant::Evl, EdlOverhead::MEDIUM).without_post_swap(),
        )
        .unwrap();
        // All master-backed sinks stay typed error-detecting.
        assert_eq!(rep.outcome.seq.edl, rep.outcome.seq.masters);
        assert_eq!(rep.swapped, 0);
    }

    #[test]
    fn nvl_forces_frontiers_or_fails_loudly() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        let rep = vl_retime(
            &cloud,
            &lib,
            clock,
            &VlConfig::new(VlVariant::Nvl, EdlOverhead::MEDIUM),
        )
        .unwrap();
        // NVL types nothing ED, so no stage is frozen; every window
        // endpoint is either forced past its frontier or recorded as a
        // tool failure.
        assert_eq!(rep.typed_ed, 0);
        assert_eq!(rep.frozen_nodes, 0);
        assert!(rep.forced_targets + rep.failed_targets > 0);
    }

    #[test]
    fn rvl_typed_counts_match_initial_window() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        let rep = vl_retime(
            &cloud,
            &lib,
            clock,
            &VlConfig::new(VlVariant::Rvl, EdlOverhead::MEDIUM),
        )
        .unwrap();
        // RVL freezing means the final EDL count equals the typed count
        // (nothing gets rescued, nothing new falls in: the signature of
        // Table VI).
        assert_eq!(rep.outcome.seq.edl, rep.typed_ed);
    }

    #[test]
    fn vl_flow_reports_uniform_phase_timings() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        let rep = vl_retime(
            &cloud,
            &lib,
            clock,
            &VlConfig::new(VlVariant::Rvl, EdlOverhead::MEDIUM),
        )
        .unwrap();
        assert!(rep.phases.total() > std::time::Duration::ZERO);
        assert_eq!(rep.phases, rep.outcome.phases);
        assert_eq!(rep.phases.counter("typed_ed"), rep.typed_ed as u64);
        assert_eq!(rep.phases.counter("forced"), rep.forced_targets as u64);
    }

    #[test]
    fn parallel_classify_matches_sequential_vl_run() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        for variant in [VlVariant::Evl, VlVariant::Nvl, VlVariant::Rvl] {
            let cfg = VlConfig::new(variant, EdlOverhead::MEDIUM);
            let seq = vl_retime(&cloud, &lib, clock, &cfg.with_threads(1)).unwrap();
            let par = vl_retime(&cloud, &lib, clock, &cfg.with_threads(4)).unwrap();
            assert_eq!(seq.typed_ed, par.typed_ed);
            assert_eq!(seq.forced_targets, par.forced_targets);
            assert_eq!(seq.failed_targets, par.failed_targets);
            assert_eq!(seq.outcome.cut, par.outcome.cut);
            assert_eq!(seq.outcome.ed_sinks, par.outcome.ed_sinks);
            assert!((seq.outcome.total_area - par.outcome.total_area).abs() < 1e-12);
        }
    }

    #[test]
    fn warm_sweep_is_bit_identical_to_cold_runs_across_overheads() {
        // The VL solve never sees the overhead, so a slot carried across
        // the sweep answers every later probe verbatim from the basis.
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        let mut slot = None;
        for c in EdlOverhead::SWEEP {
            let cfg = VlConfig::new(VlVariant::Rvl, c);
            let cold = vl_retime(&cloud, &lib, clock, &cfg).unwrap();
            let warm = vl_retime_with_sweep(&cloud, &lib, clock, &cfg, &mut slot).unwrap();
            assert_eq!(warm.outcome.cut, cold.outcome.cut, "cut at {c}");
            assert_eq!(warm.outcome.ed_sinks, cold.outcome.ed_sinks);
            assert_eq!(warm.swapped, cold.swapped);
            assert!((warm.outcome.total_area - cold.outcome.total_area).abs() < 1e-12);
        }
        let sweep = slot.expect("slot primed");
        let s = sweep.stats();
        assert_eq!(s.cold_solves, 1, "{s:?}");
        assert_eq!(
            s.warm_hits, 2,
            "overhead-only re-runs are verbatim hits: {s:?}"
        );
    }

    #[test]
    fn statistical_vl_attaches_summary_and_balances() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.4);
        let params = retime_sta::StatParams::new(0.03, 0.005, 0.9987, 0x5EED);
        for variant in [VlVariant::Evl, VlVariant::Nvl, VlVariant::Rvl] {
            let cfg = VlConfig::new(variant, EdlOverhead::MEDIUM)
                .with_model(DelayModel::Statistical(params));
            let rep = vl_retime(&cloud, &lib, clock, &cfg).unwrap();
            rep.outcome.cut.validate(&cloud).unwrap();
            let stat = rep.outcome.stat.as_ref().expect("statistical summary");
            assert_eq!(stat.yields.len(), cloud.sinks().len());
            let expect = rep.outcome.comb_area + rep.outcome.seq.total();
            assert!(
                (rep.outcome.total_area - expect).abs() < 1e-9,
                "{variant:?}"
            );
        }
    }

    #[test]
    fn sigma_zero_vl_matches_gate_based_bitwise() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        let zero = DelayModel::Statistical(retime_sta::StatParams::new(0.0, 0.0, 0.9987, 1));
        for variant in [VlVariant::Evl, VlVariant::Nvl, VlVariant::Rvl] {
            let det = vl_retime(
                &cloud,
                &lib,
                clock,
                &VlConfig::new(variant, EdlOverhead::MEDIUM).with_model(DelayModel::GateBased),
            )
            .unwrap();
            let stat = vl_retime(
                &cloud,
                &lib,
                clock,
                &VlConfig::new(variant, EdlOverhead::MEDIUM).with_model(zero),
            )
            .unwrap();
            assert_eq!(det.typed_ed, stat.typed_ed, "{variant:?}");
            assert_eq!(det.outcome.cut, stat.outcome.cut);
            assert_eq!(det.outcome.ed_sinks, stat.outcome.ed_sinks);
            assert_eq!(det.swapped, stat.swapped);
            assert_eq!(
                det.outcome.total_area.to_bits(),
                stat.outcome.total_area.to_bits()
            );
        }
    }

    #[test]
    fn grar_beats_rvl_or_ties() {
        // Section VI-D: G-RAR outperforms RVL-RAR on sequential cost.
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        for c in EdlOverhead::SWEEP {
            let rvl = vl_retime(&cloud, &lib, clock, &VlConfig::new(VlVariant::Rvl, c)).unwrap();
            let g =
                retime_core::grar(&cloud, &lib, clock, &retime_core::GrarConfig::new(c)).unwrap();
            assert!(
                g.outcome.seq.total() <= rvl.outcome.seq.total() + 1e-9,
                "G-RAR must not lose to RVL at {c}"
            );
        }
    }

    #[test]
    fn base_not_better_than_grar_but_vl_between() {
        let cloud = testbench();
        let lib = Library::fdsoi28();
        let clock = clock_for(&cloud, &lib, 1.1);
        let c = EdlOverhead::HIGH;
        let base = base_retime(&cloud, &lib, clock, DelayModel::PathBased, c).unwrap();
        let rvl = vl_retime(&cloud, &lib, clock, &VlConfig::new(VlVariant::Rvl, c)).unwrap();
        let g = retime_core::grar(&cloud, &lib, clock, &retime_core::GrarConfig::new(c)).unwrap();
        assert!(g.outcome.seq.total() <= base.seq.total() + 1e-9);
        // RVL's freezing can cost slaves but save EDL; just require it
        // lands in a sane range.
        assert!(rvl.outcome.seq.total() > 0.0);
    }
}
