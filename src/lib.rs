//! Umbrella crate for the resiliency-aware retiming workspace.
//!
//! Re-exports the public API of every member crate so downstream users can
//! depend on a single crate:
//!
//! ```
//! use resilient_retiming::netlist::{Netlist, Gate};
//!
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let _ = n.add_gate("inv", Gate::Not, &[a]);
//! ```
//!
//! # Workspace-wide invariants
//!
//! * **Determinism.** Every flow produces bit-identical results across
//!   runs and thread counts; `RETIME_THREADS` (`1` = sequential
//!   reference, `0`/unset = machine parallelism) changes wall-clock
//!   only, never output.
//! * **Observability is observation-only.** `RETIME_TRACE=1` /
//!   `RETIME_TRACE_OUT=trace.json` turn on the hierarchical span
//!   tracing of [`trace`] (Chrome-trace/Perfetto export plus a
//!   self-time profile on stderr); results never depend on the tracing
//!   state, and with tracing off each span site costs one atomic load.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! the paper-vs-measured record of every reproduced table.

pub use retime_circuits as circuits;
pub use retime_convert as convert;
pub use retime_core as grar;
pub use retime_engine as engine;
pub use retime_flow as flow;
pub use retime_liberty as liberty;
pub use retime_netlist as netlist;
pub use retime_retime as retime;
pub use retime_sim as sim;
pub use retime_sta as sta;
pub use retime_trace as trace;
pub use retime_verify as verify;
pub use retime_vl as vl;
