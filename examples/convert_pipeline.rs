//! Convert pipeline: from an edge-triggered design to a retimed
//! two-phase latch circuit, through the EDIF front door.
//!
//! ```text
//! cargo run --example convert_pipeline
//! ```
//!
//! Walks the full front-door chain the `retime-convert` CLI drives:
//! parse a `.bench` flip-flop design, export it to EDIF 2.0.0, read the
//! EDIF back (the interned-atom parser), split every FF into a
//! master/slave latch pair with a simulation-proven equivalence check,
//! inspect the borrowing envelope, and finally run G-RAR on the
//! converted circuit.

use resilient_retiming::convert::{convert, edif, ConvertConfig};
use resilient_retiming::grar::{grar, GrarConfig};
use resilient_retiming::liberty::{EdlOverhead, Library};
use resilient_retiming::netlist::bench;
use resilient_retiming::sim::equivalent;
use resilient_retiming::sta::DelayModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An edge-triggered design as it would arrive from synthesis: a
    // 3-FF control loop plus a deep data cone.
    let mut src = String::from(
        "INPUT(a)\nINPUT(b)\nOUTPUT(z)\n\
         q1 = DFF(d1)\nq2 = DFF(d2)\nq3 = DFF(d3)\n",
    );
    src.push_str("c1 = NAND(a, q3)\n");
    for i in 2..=10 {
        src.push_str(&format!("c{i} = NOT(c{})\n", i - 1));
    }
    src.push_str("d1 = BUFF(c10)\nd2 = NOR(b, q1)\nd3 = XOR(q1, q2)\nz = NOT(q2)\n");
    let ff_netlist = bench::parse("convert_pipeline", &src)?;

    // --- 1. Round-trip through EDIF (the interchange leg). ---------
    let edif_text = edif::write(&ff_netlist);
    println!(
        "EDIF export: {} bytes, first line {:?}",
        edif_text.len(),
        edif_text.lines().next().unwrap_or_default()
    );
    let parsed = edif::parse(&edif_text)?;

    // --- 2. FF -> master/slave conversion, equivalence proven. -----
    let lib = Library::fdsoi28();
    let conv = convert(&parsed, &lib, &ConvertConfig::default())?;
    let r = &conv.report;
    println!(
        "converted: {} FFs -> {} masters + {} slaves",
        r.ffs, r.masters, r.slaves
    );
    println!(
        "  sequential area {:.2} -> {:.2}",
        r.ff_seq_area, r.latch_seq_area
    );
    println!(
        "  clock: max-path {:.3} ns, crit {:.3} ns, slack {:.3} ns ({})",
        r.max_path_delay,
        r.crit_delay,
        r.slack,
        if r.feasible {
            "feasible"
        } else {
            "needs retiming"
        }
    );
    println!(
        "  borrowing envelope: slaves open {:.3} / close {:.3} ns (constraint 6)",
        r.slave_open, r.slave_close
    );

    // The proof `convert` already ran used its own stimulus; run a
    // second, independently seeded equivalence check to show the API.
    let verdict = equivalent(&ff_netlist, &conv.netlist, 128, 0xD1CE)?;
    assert_eq!(verdict, Ok(()), "converted circuit must match the source");
    println!("  re-proved equivalence over 128 fresh random cycles");

    // --- 3. The converted circuit is ready for the flows. ----------
    let outcome = grar(
        &conv.cloud,
        &lib,
        conv.clock,
        &GrarConfig::new(EdlOverhead::MEDIUM).with_model(DelayModel::PathBased),
    )?
    .outcome;
    println!(
        "G-RAR on the converted circuit: {} slaves / {} masters / {} EDL, total area {:.2}",
        outcome.seq.slaves, outcome.seq.masters, outcome.seq.edl, outcome.total_area
    );
    Ok(())
}
