//! The paper's worked example (Fig. 4 / Fig. 5), end to end.
//!
//! ```text
//! cargo run --example worked_example
//! ```
//!
//! Prints the region split, the cut-set `g(O9)`, the ILP of Eq. (10),
//! and solves it three ways (min-cost flow, network simplex, closure),
//! reproducing the paper's numbers: Cut2 with three slave latches and a
//! non-error-detecting O9 (4 area units) beats min-area retiming's Cut1
//! (5 units) at `c = 2`.

use resilient_retiming::circuits::Fig4;
use resilient_retiming::grar::{classify_and_cut_set, IlpFormulation};
use resilient_retiming::liberty::EdlOverhead;
use resilient_retiming::retime::{
    AreaModel, Region, Regions, RetimingProblem, SolverEngine, BREADTH_SCALE,
};
use resilient_retiming::sta::TimingAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = Fig4::new();
    let sta = TimingAnalysis::with_delays(&f.cloud, f.delays.clone(), f.clock);
    println!("clock: {} (Π = {})\n", f.clock, f.clock.period());

    // Regions (Section IV-B).
    let regions = Regions::compute(&sta)?;
    for (label, region) in [
        ("V_m (must move)  ", Region::Mandatory),
        ("V_n (must stay)  ", Region::Forbidden),
        ("V_r (free)       ", Region::Free),
    ] {
        let names: Vec<&str> = regions
            .nodes_in(region)
            .into_iter()
            .map(|v| f.cloud.node(v).name.as_str())
            .collect();
        println!("{label}: {names:?}");
    }

    // The cut-set g(O9) (Eqs. 8–9).
    let bp = sta.backward(f.o9());
    let (class, g) = classify_and_cut_set(&sta, &bp);
    let g_names: Vec<&str> = g.iter().map(|&v| f.cloud.node(v).name.as_str()).collect();
    println!("\nO9 is a {class:?}; g(O9) = {g_names:?}");

    // Build the modified retiming graph and show the ILP (Eq. 10).
    let mut problem = RetimingProblem::build(&f.cloud, &regions);
    let c = EdlOverhead::HIGH; // c = 2 as in the example
    problem.add_pseudo_target(&g, (c.value() * BREADTH_SCALE as f64) as i64);
    println!(
        "\nILP (Eq. 10):\n{}",
        IlpFormulation::from_problem(&problem)
    );

    // Solve with all three engines.
    for engine in [
        SolverEngine::MinCostFlow,
        SolverEngine::NetworkSimplex,
        SolverEngine::Closure,
    ] {
        let sol = problem.solve(engine)?;
        let moved: Vec<&str> = f
            .cloud
            .nodes()
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                sol.cut
                    .is_moved(resilient_retiming::netlist::NodeId(i as u32))
            })
            .map(|(_, n)| n.name.as_str())
            .collect();
        println!(
            "{engine:?}: objective = {} latch-units, moved = {moved:?}",
            sol.objective_scaled as f64 / BREADTH_SCALE as f64
        );
    }

    // The final area bill at c = 2: 3 slaves + 1 plain master = 4 units.
    let sol = problem.solve(SolverEngine::MinCostFlow)?;
    let lib = Fig4::unit_library();
    let model = AreaModel::new(&lib, c);
    let timing = sta.cut_timing(&sol.cut);
    let ed = model.ed_flags(&f.cloud, &timing);
    let seq = model.sequential(&f.cloud, &sol.cut, &ed);
    println!(
        "\nfinal: {} slaves + {} masters ({} error-detecting) = {} units (paper: 4 units)",
        seq.slaves,
        seq.masters,
        seq.edl,
        seq.total()
    );
    println!(
        "arrival at O9 = {} ≤ Π = {} → non-error-detecting",
        timing.sink_arrivals[f
            .cloud
            .sinks()
            .iter()
            .position(|&t| t == f.o9())
            .expect("O9 is a sink")],
        f.clock.period()
    );
    Ok(())
}
