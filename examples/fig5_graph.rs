//! Emits the paper's Fig. 5 — the modified retiming graph of the worked
//! example — in Graphviz DOT form.
//!
//! ```text
//! cargo run --example fig5_graph > fig5.dot && dot -Tsvg fig5.dot -o fig5.svg
//! ```
//!
//! Blue-ink elements of the published figure (original nodes/edges and
//! the `m_G3`/`m_I2` mirror nodes) appear as ellipses/diamonds; the
//! red-ink resiliency extension (the pseudo node `P(O9)` and its `−c`
//! edge to the host) is highlighted in red.

use resilient_retiming::circuits::Fig4;
use resilient_retiming::grar::classify_and_cut_set;
use resilient_retiming::retime::{Regions, RetimingProblem, BREADTH_SCALE};
use resilient_retiming::sta::TimingAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = Fig4::new();
    let sta = TimingAnalysis::with_delays(&f.cloud, f.delays.clone(), f.clock);
    let regions = Regions::compute(&sta)?;
    let bp = sta.backward(f.o9());
    let (_, g) = classify_and_cut_set(&sta, &bp);
    let mut problem = RetimingProblem::build(&f.cloud, &regions);
    problem.add_pseudo_target(&g, 2 * BREADTH_SCALE); // c = 2
    let names: Vec<String> = f.cloud.nodes().iter().map(|n| n.name.clone()).collect();
    println!("{}", problem.to_dot(&names));
    Ok(())
}
