//! Retiming the Plasma-like 3-stage CPU (the paper's largest benchmark).
//!
//! ```text
//! cargo run --release --example plasma_pipeline
//! ```
//!
//! Builds the structured CPU datapath (32×32 register file, mux-tree
//! reads, ripple ALU — ≈1100 flip-flops and several thousand gates),
//! calibrates the two-phase clock, and compares the three flows across
//! the EDL overhead sweep.

use std::time::Instant;

use resilient_retiming::circuits::paper_suite;
use resilient_retiming::grar::{grar, GrarConfig};
use resilient_retiming::liberty::{EdlOverhead, Library};
use resilient_retiming::retime::base_retime;
use resilient_retiming::sta::DelayModel;
use resilient_retiming::vl::{vl_retime, VlConfig, VlVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = paper_suite()
        .into_iter()
        .find(|s| s.name == "plasma")
        .expect("plasma is in the suite");
    let t0 = Instant::now();
    let circuit = spec.build()?;
    let stats = circuit.netlist.stats();
    println!(
        "built plasma: {} gates, {} flip-flops, {} PIs, {} POs ({} ms)",
        stats.gates,
        stats.dffs,
        stats.inputs,
        stats.outputs,
        t0.elapsed().as_millis()
    );

    let lib = Library::fdsoi28();
    let clock = circuit.calibrated_clock(&lib, DelayModel::PathBased)?;
    let nce = circuit.nce_count(&lib, DelayModel::PathBased, clock)?;
    println!("calibrated clock: {clock}");
    println!("near-critical endpoints: {nce} (paper: 217)\n");

    println!("c     flow    slaves   EDL   seq-area   total-area   time");
    for c in EdlOverhead::SWEEP {
        let base = base_retime(&circuit.cloud, &lib, clock, DelayModel::PathBased, c)?;
        let rvl = vl_retime(
            &circuit.cloud,
            &lib,
            clock,
            &VlConfig::new(VlVariant::Rvl, c),
        )?;
        let g = grar(&circuit.cloud, &lib, clock, &GrarConfig::new(c))?;
        for (name, slaves, edl, seq, total, secs) in [
            (
                "base",
                base.seq.slaves,
                base.seq.edl,
                base.seq.total(),
                base.total_area,
                base.stats.elapsed.as_secs_f64(),
            ),
            (
                "RVL ",
                rvl.outcome.seq.slaves,
                rvl.outcome.seq.edl,
                rvl.outcome.seq.total(),
                rvl.outcome.total_area,
                rvl.outcome.stats.elapsed.as_secs_f64(),
            ),
            (
                "G   ",
                g.outcome.seq.slaves,
                g.outcome.seq.edl,
                g.outcome.seq.total(),
                g.outcome.total_area,
                g.outcome.stats.elapsed.as_secs_f64(),
            ),
        ] {
            println!(
                "{:<5} {name}  {slaves:>6}  {edl:>4}  {seq:>9.1}  {total:>11.1}  {secs:>5.2}s",
                format!("{}", c.value()),
            );
        }
        println!();
    }
    Ok(())
}
