//! Error-rate study (the paper's Table VIII methodology on one circuit).
//!
//! ```text
//! cargo run --release --example error_rate_study
//! ```
//!
//! Retimes one benchmark with all three flows and measures, by
//! random-input timed simulation, how often the error-detecting latches
//! actually fire — and verifies that no *silent* timing hazards exist
//! (a transition in the window at a master that is not error-detecting).

use resilient_retiming::circuits::paper_suite;
use resilient_retiming::grar::{grar, GrarConfig};
use resilient_retiming::liberty::{EdlOverhead, Library};
use resilient_retiming::retime::base_retime;
use resilient_retiming::sim::{error_rate, ErrorRateConfig};
use resilient_retiming::sta::DelayModel;
use resilient_retiming::vl::{vl_retime, VlConfig, VlVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = paper_suite()
        .into_iter()
        .find(|s| s.name == "s9234")
        .expect("s9234 is in the suite");
    let circuit = spec.build()?;
    let lib = Library::fdsoi28();
    let clock = circuit.calibrated_clock(&lib, DelayModel::PathBased)?;
    let cfg = ErrorRateConfig {
        cycles: 3000,
        seed: 7,
    };

    println!("circuit s9234, {clock}\n");
    println!("c     flow    EDL#   error-rate   silent-hazard-cycles");
    for c in EdlOverhead::SWEEP {
        let base = base_retime(&circuit.cloud, &lib, clock, DelayModel::PathBased, c)?;
        let rvl = vl_retime(
            &circuit.cloud,
            &lib,
            clock,
            &VlConfig::new(VlVariant::Rvl, c),
        )?;
        let g = grar(&circuit.cloud, &lib, clock, &GrarConfig::new(c))?;
        for (name, cut, ed, edl, delays) in [
            (
                "base",
                &base.cut,
                &base.ed_sinks,
                base.seq.edl,
                &base.final_delays,
            ),
            (
                "RVL ",
                &rvl.outcome.cut,
                &rvl.outcome.ed_sinks,
                rvl.outcome.seq.edl,
                &rvl.outcome.final_delays,
            ),
            (
                "G   ",
                &g.outcome.cut,
                &g.outcome.ed_sinks,
                g.outcome.seq.edl,
                &g.outcome.final_delays,
            ),
        ] {
            let rep = error_rate(&circuit.cloud, delays, &clock, cut, ed, &cfg);
            println!(
                "{:<5} {name}  {edl:>4}   {:>8.2} %   {}",
                format!("{}", c.value()),
                rep.rate_percent(),
                rep.silent_hazard_cycles
            );
        }
        println!();
    }
    println!("(an error event is the EDL *working*: the design slows down for that cycle instead of failing)");
    Ok(())
}
