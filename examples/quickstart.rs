//! Quickstart: retime a small resilient circuit with all three flows.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the complete pipeline on a hand-written circuit: parse a
//! `.bench` netlist, extract the retiming view, pick a two-phase clock,
//! run base retiming / RVL-RAR / G-RAR, and compare the area bills.

use resilient_retiming::grar::{grar, GrarConfig};
use resilient_retiming::liberty::{EdlOverhead, Library};
use resilient_retiming::netlist::{bench, CombCloud};
use resilient_retiming::retime::base_retime;
use resilient_retiming::sta::{DelayModel, TimingAnalysis, TwoPhaseClock};
use resilient_retiming::vl::{vl_retime, VlConfig, VlVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-stage design: a deep arithmetic-ish cone and a shallow
    // control cone.
    let mut src = String::from("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nq1 = DFF(d1)\nq2 = DFF(d2)\n");
    src.push_str("c1 = NAND(a, b)\n");
    for i in 2..=12 {
        src.push_str(&format!("c{i} = NOT(c{})\n", i - 1));
    }
    src.push_str("d1 = BUFF(c12)\nd2 = NOR(b, q1)\nz = NOT(q2)\n");
    let netlist = bench::parse("quickstart", &src)?;
    let cloud = CombCloud::extract(&netlist)?;
    let lib = Library::fdsoi28();

    // The two-phase clock of Fig. 1: the resiliency window is φ1 = 0.3 P.
    let probe = TimingAnalysis::new(
        &cloud,
        &lib,
        TwoPhaseClock::from_max_delay(1.0),
        DelayModel::PathBased,
    )?;
    let crit = cloud
        .sinks()
        .iter()
        .map(|&t| probe.df(t))
        .fold(0.0f64, f64::max);
    // Generous enough that the deep cone is rescuable by retiming
    // (Π ≥ crit + latch flow-through), tight enough that its endpoint is
    // near-critical at the initial placement.
    let clock = TwoPhaseClock::from_max_delay(crit * 1.6 + 0.1);
    println!("clock: {clock}");
    println!(
        "  data arriving after Π = {:.3} ns needs an error-detecting master\n",
        clock.period()
    );

    let c = EdlOverhead::HIGH;
    let base = base_retime(&cloud, &lib, clock, DelayModel::PathBased, c)?;
    let rvl = vl_retime(&cloud, &lib, clock, &VlConfig::new(VlVariant::Rvl, c))?;
    let g = grar(&cloud, &lib, clock, &GrarConfig::new(c))?;

    println!("flow        slaves  EDL  seq-area  total-area");
    for (name, slaves, edl, seq, total) in [
        (
            "base     ",
            base.seq.slaves,
            base.seq.edl,
            base.seq.total(),
            base.total_area,
        ),
        (
            "RVL-RAR  ",
            rvl.outcome.seq.slaves,
            rvl.outcome.seq.edl,
            rvl.outcome.seq.total(),
            rvl.outcome.total_area,
        ),
        (
            "G-RAR    ",
            g.outcome.seq.slaves,
            g.outcome.seq.edl,
            g.outcome.seq.total(),
            g.outcome.total_area,
        ),
    ] {
        println!("{name}  {slaves:>5}  {edl:>3}  {seq:>8.2}  {total:>10.2}");
    }
    println!(
        "\nG-RAR saves {:.1} % total area over base retiming at c = {}",
        100.0 * (base.total_area - g.outcome.total_area) / base.total_area,
        c.value()
    );
    Ok(())
}
