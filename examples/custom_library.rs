//! Bring-your-own standard-cell library.
//!
//! ```text
//! cargo run --example custom_library
//! ```
//!
//! Shows how to define a custom library (here: a hypothetical 16 nm-class
//! library with faster cells and a *relatively* more expensive latch),
//! build the virtual library of Section V on top of it, and study how the
//! latch-to-flop area ratio changes the conclusion of Section VI-D (the
//! paper's "these results are library dependent" caveat).

use resilient_retiming::grar::{grar, GrarConfig};
use resilient_retiming::liberty::{
    CombCell, DelayArc, EdlOverhead, FlipFlopCell, LatchCell, LatchGroup, Library, Sense,
    VirtualLibrary,
};
use resilient_retiming::netlist::{bench, CombCloud};
use resilient_retiming::retime::{flop_design_area, AreaModel};
use resilient_retiming::sta::{DelayModel, TimingAnalysis, TwoPhaseClock};

fn library_16nm_ish(latch_ratio: f64) -> Library {
    let cc = |name: &str, area: f64, d: f64, sense: Sense| CombCell {
        name: name.to_string(),
        area,
        intrinsic: DelayArc {
            rise: d,
            fall: d * 0.85,
        },
        per_extra_input: 0.003,
        load_delay: 0.001,
        per_extra_input_area: 0.2,
        sense,
    };
    let ff = FlipFlopCell {
        area: 2.4,
        clk_to_q: 0.04,
        setup: 0.015,
    };
    Library::new(
        "sixteen-ish",
        [
            ("BUFF", cc("BUF", 0.35, 0.011, Sense::Positive)),
            ("NOT", cc("INV", 0.24, 0.006, Sense::Negative)),
            ("AND", cc("AND2", 0.6, 0.015, Sense::Positive)),
            ("NAND", cc("NAND2", 0.48, 0.009, Sense::Negative)),
            ("OR", cc("OR2", 0.6, 0.016, Sense::Positive)),
            ("NOR", cc("NOR2", 0.48, 0.010, Sense::Negative)),
            ("XOR", cc("XOR2", 0.84, 0.017, Sense::NonUnate)),
            ("XNOR", cc("XNOR2", 0.84, 0.017, Sense::NonUnate)),
        ],
        ff,
        LatchCell {
            area: ff.area * latch_ratio,
            clk_to_q: 0.028,
            d_to_q: 0.039,
            setup: 0.01,
        },
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized pipeline workload.
    let mut src = String::from("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nq1 = DFF(d1)\nq2 = DFF(d2)\n");
    src.push_str("c1 = NAND(a, b)\n");
    for i in 2..=16 {
        src.push_str(&format!("c{i} = NOT(c{})\n", i - 1));
    }
    src.push_str("d1 = BUFF(c16)\nd2 = NOR(b, q1)\nz = NOT(q2)\n");
    let netlist = bench::parse("custom", &src)?;
    let cloud = CombCloud::extract(&netlist)?;

    println!("latch/flop  flop-design  latch-design(G-RAR, c=1)   verdict");
    for ratio in [0.35, 0.43, 0.6, 0.8] {
        let lib = library_16nm_ish(ratio);
        let probe = TimingAnalysis::new(
            &cloud,
            &lib,
            TwoPhaseClock::from_max_delay(1.0),
            DelayModel::PathBased,
        )?;
        let crit = cloud
            .sinks()
            .iter()
            .map(|&t| probe.df(t))
            .fold(0.0f64, f64::max);
        let clock = TwoPhaseClock::from_max_delay(crit * 1.1 + 0.1);
        let model = AreaModel::new(&lib, EdlOverhead::MEDIUM);
        let flop_area = flop_design_area(&cloud, &model)?;
        let g = grar(&cloud, &lib, clock, &GrarConfig::new(EdlOverhead::MEDIUM))?;
        let verdict = if g.outcome.total_area <= flop_area {
            "resilient design is area-free (the paper's surprise)"
        } else {
            "resiliency costs area with these latches"
        };
        println!(
            "  {ratio:>4.2}     {flop_area:>9.2}   {:>24.2}   {verdict}",
            g.outcome.total_area
        );
    }

    // The virtual library itself.
    let lib = library_16nm_ish(0.43);
    let vl = VirtualLibrary::build(lib, EdlOverhead::HIGH, 0.12);
    println!("\nvirtual library groups (c = 2, window = 0.12 ns):");
    for group in LatchGroup::ALL {
        let latch = vl.latch(group);
        println!(
            "  {group:?}: area {:.2} µm², extra setup {:.3} ns",
            latch.area, latch.extra_setup
        );
    }
    println!(
        "post-retiming swap reclaims {:.2} µm² per unnecessary error-detecting latch",
        vl.swap_saving()
    );
    Ok(())
}
