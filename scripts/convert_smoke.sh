#!/usr/bin/env bash
# Smoke-test the conversion front door end to end:
#   1. write a small FF `.bench` circuit,
#   2. export it to EDIF with `retime-convert --no-convert` (pure format
#      conversion, no latch splitting),
#   3. read the EDIF back, convert to two-phase master/slave latches,
#      retime with all three flows under RETIME_VERIFY=1 (certified),
#      and write the converted `.bench`,
#   4. assert the report proved equivalence and the output really is
#      latch-based (LATCHM/LATCHS, zero DFFs),
#   5. assert hostile input exits 1 with a structured error, and a bad
#      flag exits 2.
# Binary defaults to the release profile; override with CONVERT=.
set -euo pipefail

CONVERT=${CONVERT:-target/release/retime-convert}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cat >"$WORK/smoke.bench" <<'EOF'
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G10 = NOR(G0, G14)
G11 = NOR(G5, G9)
G13 = NAND(G2, G12)
G14 = NOT(G5)
G9 = OR(G1, G7)
G12 = NOR(G6, G9)
G17 = NAND(G12, G10)
EOF

# --- 1. bench -> EDIF, format conversion only. ---
"$CONVERT" --no-convert --out "$WORK/smoke.edif" "$WORK/smoke.bench"
grep -q '(edif smoke' "$WORK/smoke.edif" \
  || { echo "FAIL: EDIF export carries no (edif ...) header"; exit 1; }
grep -q '(cellRef DFF' "$WORK/smoke.edif" \
  || { echo "FAIL: --no-convert export lost the flip-flops"; exit 1; }

# --- 2. EDIF -> convert -> certified retiming row -> bench. ---
REPORT=$(RETIME_VERIFY=1 "$CONVERT" --retime --out "$WORK/smoke_ms.bench" "$WORK/smoke.edif")
echo "$REPORT"
echo "$REPORT" | grep -q 'equivalence      proven against the FF source over 256 random cycles' \
  || { echo "FAIL: report did not prove equivalence"; exit 1; }
echo "$REPORT" | grep -q 'Retiming the converted smoke' \
  || { echo "FAIL: --retime printed no table"; exit 1; }

grep -q 'LATCHM' "$WORK/smoke_ms.bench" && grep -q 'LATCHS' "$WORK/smoke_ms.bench" \
  || { echo "FAIL: converted bench has no master/slave latches"; exit 1; }
grep -q 'DFF' "$WORK/smoke_ms.bench" \
  && { echo "FAIL: flip-flops survived conversion"; exit 1; }

# --- 3. The converted bench re-parses and re-exports to EDIF. ---
"$CONVERT" --no-convert --out "$WORK/smoke_ms.edif" "$WORK/smoke_ms.bench"
grep -q '(cellRef LATCHM' "$WORK/smoke_ms.edif" \
  || { echo "FAIL: converted EDIF export lost the master latches"; exit 1; }

# --- 4. Hostile input is a structured exit-1; bad flags are exit-2. ---
printf '(edif truncated (' >"$WORK/hostile.edif"
rc=0; "$CONVERT" "$WORK/hostile.edif" 2>"$WORK/err.txt" || rc=$?
[ "$rc" -eq 1 ] || { echo "FAIL: hostile input exited $rc, wanted 1"; exit 1; }
grep -q 'retime-convert:' "$WORK/err.txt" \
  || { echo "FAIL: hostile input produced no structured error"; exit 1; }

rc=0; "$CONVERT" --no-such-flag "$WORK/smoke.bench" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "FAIL: usage error exited $rc, wanted 2"; exit 1; }

echo "PASS: bench -> EDIF -> convert -> certified retime -> bench round trip"
