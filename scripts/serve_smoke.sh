#!/usr/bin/env bash
# Smoke-test the retime-serve daemon end to end:
#   1. start it on a kernel-chosen loopback port,
#   2. submit the same tiny-suite G-RAR job twice,
#   3. assert the second submission is a cache hit with zero solver work
#      and a bit-identical result payload,
#   4. scrape the metrics hit counter,
#   5. shut the daemon down gracefully and check it exits,
#   6. restart it on the same --cache-dir and assert the first
#      submission is already a disk hit with the same payload digest,
#   7. run a small serve-loadgen pass against the restarted daemon and
#      validate the BENCH json it writes.
# Binaries default to the release profile; override with SERVE=/CLIENT=/LOADGEN=.
set -euo pipefail

SERVE=${SERVE:-target/release/retime-serve}
CLIENT=${CLIENT:-target/release/retime-client}
LOADGEN=${LOADGEN:-target/release/serve-loadgen}
BANNER=$(mktemp)
CACHE_DIR=$(mktemp -d)

"$SERVE" --addr 127.0.0.1:0 --queue-bound 16 --cache-dir "$CACHE_DIR" >"$BANNER" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$BANNER" "$CACHE_DIR"' EXIT

wait_for_addr() {
  for _ in $(seq 1 100); do
    grep -q "listening on" "$BANNER" && break
    sleep 0.1
  done
  ADDR=$(sed -n 's/^retime-serve listening on //p' "$BANNER")
  [ -n "$ADDR" ] || { echo "FAIL: daemon never printed its address"; exit 1; }
}
wait_for_addr
echo "daemon at $ADDR"

# --help must document every submit flag the server accepts — greps here
# keep the client usage text, the module doc, and the README quickstart
# from drifting apart.
HELP=$("$CLIENT" --help)
for flag in --format --convert --model --yield --sigma --clock-sigma --stat-seed; do
  grep -q -e "$flag" <<<"$HELP" \
    || { echo "FAIL: client --help does not document $flag"; exit 1; }
done
grep -q "statistical" <<<"$HELP" \
  || { echo "FAIL: client --help does not mention the statistical model"; exit 1; }

first=$("$CLIENT" --addr "$ADDR" submit --circuit s1196 --flow grar --c medium --wait)
echo "$first"
second=$("$CLIENT" --addr "$ADDR" submit --circuit s1196 --flow grar --c medium --wait)
echo "$second"

echo "$second" | grep -q '"cached":true' \
  || { echo "FAIL: second submission was not a cache hit"; exit 1; }
echo "$second" | grep -q '"solver_invocations":0' \
  || { echo "FAIL: cache hit reported solver work"; exit 1; }

# Bit-identical payloads: same digest, same area row.
sha() { sed -n 's/.*"payload_sha256":"\([0-9a-f]*\)".*/\1/p' <<<"$1"; }
row() { sed -n 's/.*"result"://p' <<<"$1"; }
[ -n "$(sha "$first")" ] && [ "$(sha "$first")" = "$(sha "$second")" ] \
  || { echo "FAIL: payload digests differ"; exit 1; }
[ "$(row "$first")" = "$(row "$second")" ] \
  || { echo "FAIL: result rows differ"; exit 1; }
row "$first" | grep -q '"total_area":' \
  || { echo "FAIL: result row carries no area"; exit 1; }

"$CLIENT" --addr "$ADDR" metrics | grep -q '^retime_serve_cache_hits_total 1$' \
  || { echo "FAIL: metrics did not count the cache hit"; exit 1; }

# --- Statistical delay mode: a distinct cache entry with yield fields. ---
stat=$("$CLIENT" --addr "$ADDR" submit --circuit s1196 --flow grar --c medium \
  --model statistical --yield 0.9987 --wait)
echo "$stat"
echo "$stat" | grep -q '"cached":true' \
  && { echo "FAIL: statistical submission aliased the deterministic cache entry"; exit 1; }
row "$stat" | grep -q '"min_yield":' \
  || { echo "FAIL: statistical result row carries no min_yield"; exit 1; }
row "$stat" | grep -q '"jitter_sens":' \
  || { echo "FAIL: statistical result row carries no jitter_sens"; exit 1; }
[ "$(sha "$stat")" != "$(sha "$first")" ] \
  || { echo "FAIL: statistical payload digest equals the deterministic one"; exit 1; }

"$CLIENT" --addr "$ADDR" shutdown | grep -q '"draining":true' \
  || { echo "FAIL: shutdown was not acknowledged"; exit 1; }
wait "$SERVER_PID"
echo "PASS: cache-hit round trip, metrics, and graceful shutdown"

# --- Restart on the same cache dir: the disk tier must answer cold. ---
: >"$BANNER"
"$SERVE" --addr 127.0.0.1:0 --queue-bound 16 --cache-dir "$CACHE_DIR" >"$BANNER" &
SERVER_PID=$!
wait_for_addr
echo "restarted daemon at $ADDR"

third=$("$CLIENT" --addr "$ADDR" submit --circuit s1196 --flow grar --c medium --wait)
echo "$third"
echo "$third" | grep -q '"cached":true' \
  || { echo "FAIL: restart-warm submission was not a cache hit"; exit 1; }
echo "$third" | grep -q '"solver_invocations":0' \
  || { echo "FAIL: restart-warm hit reported solver work"; exit 1; }
[ "$(sha "$first")" = "$(sha "$third")" ] \
  || { echo "FAIL: payload digest changed across restart"; exit 1; }
# Two persisted entries: the deterministic job and its statistical twin.
"$CLIENT" --addr "$ADDR" metrics | grep -q '^retime_serve_cache_recovered_total 2$' \
  || { echo "FAIL: recovery did not count both persisted entries"; exit 1; }

# --- Small loadgen pass against the restarted (disk-warm) daemon. ---
BENCH_JSON=$(mktemp)
"$LOADGEN" --addr "$ADDR" --connections 50 --requests 200 --json "$BENCH_JSON"
for field in p50_ms p99_ms p999_ms saturation_jobs_per_sec; do
  grep -q "\"$field\":" "$BENCH_JSON" \
    || { echo "FAIL: BENCH json missing $field"; rm -f "$BENCH_JSON"; exit 1; }
done
cat "$BENCH_JSON"
rm -f "$BENCH_JSON"

"$CLIENT" --addr "$ADDR" shutdown | grep -q '"draining":true' \
  || { echo "FAIL: restarted daemon shutdown was not acknowledged"; exit 1; }
wait "$SERVER_PID"
trap 'rm -rf "$BANNER" "$CACHE_DIR"' EXIT
echo "PASS: restart-warm disk hit, loadgen smoke, and graceful shutdown"
