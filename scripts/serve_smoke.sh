#!/usr/bin/env bash
# Smoke-test the retime-serve daemon end to end:
#   1. start it on a kernel-chosen loopback port,
#   2. submit the same tiny-suite G-RAR job twice,
#   3. assert the second submission is a cache hit with zero solver work
#      and a bit-identical result payload,
#   4. scrape the metrics hit counter,
#   5. shut the daemon down gracefully and check it exits.
# Binaries default to the release profile; override with SERVE=/CLIENT=.
set -euo pipefail

SERVE=${SERVE:-target/release/retime-serve}
CLIENT=${CLIENT:-target/release/retime-client}
BANNER=$(mktemp)

"$SERVE" --addr 127.0.0.1:0 --queue-bound 16 >"$BANNER" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$BANNER"' EXIT

for _ in $(seq 1 100); do
  grep -q "listening on" "$BANNER" && break
  sleep 0.1
done
ADDR=$(sed -n 's/^retime-serve listening on //p' "$BANNER")
[ -n "$ADDR" ] || { echo "FAIL: daemon never printed its address"; exit 1; }
echo "daemon at $ADDR"

first=$("$CLIENT" --addr "$ADDR" submit --circuit s1196 --flow grar --c medium --wait)
echo "$first"
second=$("$CLIENT" --addr "$ADDR" submit --circuit s1196 --flow grar --c medium --wait)
echo "$second"

echo "$second" | grep -q '"cached":true' \
  || { echo "FAIL: second submission was not a cache hit"; exit 1; }
echo "$second" | grep -q '"solver_invocations":0' \
  || { echo "FAIL: cache hit reported solver work"; exit 1; }

# Bit-identical payloads: same digest, same area row.
sha() { sed -n 's/.*"payload_sha256":"\([0-9a-f]*\)".*/\1/p' <<<"$1"; }
row() { sed -n 's/.*"result"://p' <<<"$1"; }
[ -n "$(sha "$first")" ] && [ "$(sha "$first")" = "$(sha "$second")" ] \
  || { echo "FAIL: payload digests differ"; exit 1; }
[ "$(row "$first")" = "$(row "$second")" ] \
  || { echo "FAIL: result rows differ"; exit 1; }
row "$first" | grep -q '"total_area":' \
  || { echo "FAIL: result row carries no area"; exit 1; }

"$CLIENT" --addr "$ADDR" metrics | grep -q '^retime_serve_cache_hits_total 1$' \
  || { echo "FAIL: metrics did not count the cache hit"; exit 1; }

"$CLIENT" --addr "$ADDR" shutdown | grep -q '"draining":true' \
  || { echo "FAIL: shutdown was not acknowledged"; exit 1; }
wait "$SERVER_PID"
trap 'rm -f "$BANNER"' EXIT
echo "PASS: cache-hit round trip, metrics, and graceful shutdown"
