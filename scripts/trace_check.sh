#!/usr/bin/env bash
# Smoke-test the tracing layer end to end:
#   1. run table4 on the tiny suite twice — untraced, then with
#      RETIME_TRACE_OUT pointing at a scratch file,
#   2. validate the exported Chrome trace (JSON parse + span nesting)
#      with the trace-check binary,
#   3. assert the stdout table rows are bit-identical across the two
#      runs (tracing is observation-only),
#   4. assert the self-time profile landed on stderr.
# Binaries default to the release profile; override with TABLE=/CHECK=.
set -euo pipefail

TABLE=${TABLE:-target/release/table4}
CHECK=${CHECK:-target/release/trace-check}
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

RETIME_SUITE=tiny "$TABLE" >"$OUT/rows_off.txt"
RETIME_SUITE=tiny RETIME_TRACE_OUT="$OUT/trace.json" \
  "$TABLE" >"$OUT/rows_on.txt" 2>"$OUT/stderr.txt"

[ -s "$OUT/trace.json" ] || { echo "FAIL: no trace file was written"; exit 1; }
"$CHECK" "$OUT/trace.json"

cmp "$OUT/rows_off.txt" "$OUT/rows_on.txt" \
  || { echo "FAIL: table rows differ under tracing"; exit 1; }
grep -q "excl(ms)" "$OUT/stderr.txt" \
  || { echo "FAIL: no self-time profile on stderr"; exit 1; }
echo "PASS: trace validates, rows bit-identical, profile emitted"
